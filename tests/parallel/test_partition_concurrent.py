"""Readers racing compaction: no ``FileNotFoundError``, no torn results.

Two guarantees under test:

* a handle holding a **stale manifest** keeps answering
  ``read_time_range`` after ``compact()`` swapped the manifest and
  unlinked the old generation's files — the vanished shard's rows are
  reconstructed from the fresh manifest (same rows, possibly re-sorted);
* concurrent readers hammering ``select_time`` + ``read_time_range``
  while compactions run observe, for every fixed time window, exactly the
  quiescent read's row multiset — never a mix of generations, never a
  partial window.

Row *multiset* (canonical row order) is the comparison, because
compaction re-sorts rows by time: the data must be identical, the
physical order may legally differ between generations.
"""

import threading

import numpy as np

from repro.frame.table import Table, concat
from repro.parallel.partition import PartitionedDataset


def _make_dataset(root, n_appends=10, rows=300, seed=3):
    ds = PartitionedDataset.create(root, "telemetry")
    rng = np.random.default_rng(seed)
    t0 = 0.0
    for k in range(n_appends):
        t = np.sort(rng.uniform(t0, t0 + 60.0, rows))
        if k % 3 == 1:  # a late streaming flush, internally unsorted
            t = t[rng.permutation(rows)]
        ds.append(
            Table({
                "timestamp": t,
                "node": rng.integers(0, 8, rows),
                "power": rng.integers(18_000, 22_000, rows) * 0.1,
            }),
            t0, t0 + 60.0,
        )
        t0 += 60.0
    return ds


def _canonical(table: Table) -> dict[str, np.ndarray]:
    keys = [np.asarray(table[c]) for c in reversed(table.columns)]
    order = np.lexsort(keys)
    return {c: np.asarray(table[c])[order] for c in table.columns}


def _window(ds: PartitionedDataset, lo: float, hi: float) -> Table:
    parts = [
        ds.read_time_range(i, lo, hi, time="timestamp")
        for i in ds.select_time(lo, hi)
    ]
    parts = [p for p in parts if p.n_rows]
    if not parts:
        return ds.read_time_range(0, -np.inf, -np.inf)
    return parts[0] if len(parts) == 1 else concat(parts)


def assert_same_rows(a: Table, b: Table, label=""):
    assert a.columns == b.columns, label
    assert a.n_rows == b.n_rows, label
    ca, cb = _canonical(a), _canonical(b)
    for c in a.columns:
        assert np.array_equal(ca[c], cb[c]), f"{label}: column {c}"


class TestStaleHandleSurvivesCompaction:
    def test_read_after_compact_returns_same_rows(self, tmp_path):
        ds = _make_dataset(tmp_path / "ds")
        stale = PartitionedDataset(ds.root)  # opened pre-compaction
        reference = [
            stale.read_time_range(i, 90.0, 400.0)
            for i in range(stale.n_partitions)
        ]
        ds.compact(target_rows=1200)
        # the stale handle's shard files are gone; every per-shard read
        # must still answer with that shard's exact row multiset
        for i, ref in enumerate(reference):
            got = stale.read_time_range(i, 90.0, 400.0)
            assert_same_rows(got, ref, label=f"shard {i}")

    def test_stale_manifest_not_mutated_by_retry(self, tmp_path):
        ds = _make_dataset(tmp_path / "ds")
        stale = PartitionedDataset(ds.root)
        filenames = [m.filename for m in stale.partitions]
        ds.compact(target_rows=1500)
        stale.read_time_range(2, 0.0, 600.0)  # forces the retry path
        assert [m.filename for m in stale.partitions] == filenames

    def test_projection_respected_on_retry(self, tmp_path):
        ds = _make_dataset(tmp_path / "ds")
        stale = PartitionedDataset(ds.root)
        ds.compact(target_rows=1500)
        got = stale.read_time_range(1, 0.0, 600.0, columns=["power"])
        assert got.columns == ["power"]

    def test_out_of_extent_slice_is_empty(self, tmp_path):
        ds = _make_dataset(tmp_path / "ds")
        stale = PartitionedDataset(ds.root)
        ds.compact(target_rows=1500)
        # shard 0 spans [0, 60): a disjoint window must come back empty,
        # even though the fresh shards covering it are much wider
        got = stale.read_time_range(0, 300.0, 360.0)
        assert got.n_rows == 0


class TestReadersDuringCompaction:
    WINDOWS = [(0.0, 120.0), (95.0, 280.0), (240.0, 600.0), (0.0, 600.0)]

    def test_hammered_reads_match_quiescent(self, tmp_path):
        ds = _make_dataset(tmp_path / "ds", n_appends=10)
        reference = {w: _window(ds, *w) for w in self.WINDOWS}
        # the hammered handle: opened before compaction and shared by both
        # reader threads, so once the first compact() lands every sweep
        # resolves vanished shard files through the retry path
        shared = PartitionedDataset(ds.root)

        stop = threading.Event()
        failures: list[str] = []

        def reader(use_fresh_handles: bool):
            # one reader keeps the shared stale handle; the other re-opens
            # the dataset each sweep (sees whichever manifest is current)
            while not stop.is_set():
                handle = (
                    PartitionedDataset(ds.root) if use_fresh_handles
                    else shared
                )
                for w in self.WINDOWS:
                    try:
                        got = _window(handle, *w)
                        assert_same_rows(got, reference[w], label=str(w))
                    except AssertionError as err:
                        failures.append(str(err))
                        stop.set()
                        return
                    except Exception as err:  # noqa: BLE001
                        failures.append(f"{w}: {type(err).__name__}: {err}")
                        stop.set()
                        return

        threads = [
            threading.Thread(target=reader, args=(False,)),
            threading.Thread(target=reader, args=(False,)),
            threading.Thread(target=reader, args=(True,)),
        ]
        for t in threads:
            t.start()
        try:
            # repeated compactions with growing targets: each one rewrites
            # shards, swaps the manifest, and unlinks the old generation
            # under the readers' feet
            for target in (600, 900, 1500, 3000):
                ds.compact(target_rows=target)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not failures, failures[:3]
        # and the quiescent post-compaction read still agrees
        for w in self.WINDOWS:
            assert_same_rows(_window(ds, *w), reference[w], label=str(w))

"""Shared-memory Table transport: fidelity, cleanup, executor integration."""

import glob

import numpy as np

from repro.frame.table import Table
from repro.parallel import Executor
from repro.parallel.shm import (
    SHM_MIN_BYTES,
    SharedTableRef,
    attach_table,
    materialize,
    release,
    share_table,
    unwrap_item,
    wrap_item,
    wrap_result,
    unwrap_result,
)


def big_table(seed: int = 0, n: int = 20_000) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "node": np.repeat(np.arange(n // 100), 100).astype(np.int64),
            "timestamp": np.arange(n, dtype=np.float64),
            "power": rng.normal(2000.0, 100.0, n),
            "flag": rng.random(n) < 0.5,
            "name": np.array([f"n{i % 7}" for i in range(n)]),
        }
    )


def segment_names() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


def double_power(t: Table) -> Table:
    return t.with_column("power", t["power"] * 2.0)


def scale_power(t: Table, factor: float) -> Table:
    return t.with_column("power", t["power"] * factor)


def return_input(t: Table) -> Table:
    # pathological: result aliases the mapped input segment
    return t


def head_rows(t: Table) -> Table:
    # small result: travels back as a plain pickle, but must not alias
    # the segment the worker is about to close
    return t[:4]


class TestRoundTrip:
    def test_share_attach_materialize(self):
        t = big_table()
        before = segment_names()
        shm, ref = share_table(t)
        try:
            assert isinstance(ref, SharedTableRef)
            assert ref.n_rows == t.n_rows
            assert ref.nbytes == t.nbytes()
            view, handle = attach_table(ref)
            for c in t.columns:
                assert view[c].dtype == t[c].dtype
                assert np.array_equal(view[c], t[c])
            del view
            handle.close()
            out = materialize(ref, unlink=False)
        finally:
            release(shm)
        for c in t.columns:
            assert np.array_equal(out[c], t[c])
        assert segment_names() == before

    def test_small_tables_bypass_shm(self):
        t = Table({"x": np.arange(4)})
        assert t.nbytes() < SHM_MIN_BYTES
        owned: list = []
        assert wrap_item(t, owned) is t
        assert owned == []
        assert wrap_result(t) is t

    def test_wrap_unwrap_tuple(self):
        t = big_table()
        owned: list = []
        try:
            wrapped = wrap_item((t, 3.5), owned)
            assert isinstance(wrapped[0], SharedTableRef)
            assert wrapped[1] == 3.5
            (val, scalar), handles = unwrap_item(wrapped)
            assert scalar == 3.5
            assert np.array_equal(val["power"], t["power"])
            del val
            for h in handles:
                h.close()
        finally:
            for seg in owned:
                release(seg)

    def test_result_round_trip(self):
        t = big_table()
        shipped = wrap_result(t)
        assert isinstance(shipped, SharedTableRef)
        out = unwrap_result(shipped)
        for c in t.columns:
            assert np.array_equal(out[c], t[c])


class TestTransportMetrics:
    def test_wrap_paths_counted(self):
        from repro.obs.metrics import REGISTRY

        t = big_table()
        small = Table({"x": np.arange(4)})
        seg = REGISTRY.counter("shm.items", transport="segment")
        pik = REGISTRY.counter("shm.items", transport="pickle")
        out_bytes = REGISTRY.counter("shm.bytes_out")
        in_bytes = REGISTRY.counter("shm.bytes_in")
        seg0, pik0 = seg.value, pik.value
        out0, in0 = out_bytes.value, in_bytes.value

        owned: list = []
        try:
            wrapped = wrap_item(t, owned)
            assert isinstance(wrapped, SharedTableRef)
            assert wrap_item(small, owned) is small
        finally:
            for s in owned:
                release(s)
        assert seg.value == seg0 + 1
        assert pik.value == pik0 + 1
        assert out_bytes.value == out0 + t.nbytes()

        unwrap_result(wrap_result(t))
        assert in_bytes.value == in0 + t.nbytes()


class TestExecutorIntegration:
    def test_processes_match_serial(self):
        items = [big_table(seed) for seed in range(4)]
        before = segment_names()
        serial = Executor(backend="serial").map(double_power, items)
        proc = Executor(backend="processes", max_workers=2).map(
            double_power, items
        )
        for a, b in zip(serial, proc):
            assert a.columns == b.columns
            for c in a.columns:
                assert a[c].dtype == b[c].dtype
                assert np.array_equal(a[c], b[c])
        assert segment_names() == before, "leaked shared-memory segments"

    def test_starmap_with_tables(self):
        items = [(big_table(s), float(s + 1)) for s in range(3)]
        serial = Executor(backend="serial").starmap(scale_power, items)
        proc = Executor(backend="processes", max_workers=2).starmap(
            scale_power, items
        )
        for a, b in zip(serial, proc):
            assert np.array_equal(a["power"], b["power"])

    def test_identity_result_survives_segment_close(self):
        items = [big_table(s) for s in range(2)]
        before = segment_names()
        out = Executor(backend="processes", max_workers=2).map(
            return_input, items
        )
        for a, b in zip(items, out):
            for c in a.columns:
                assert np.array_equal(a[c], b[c])
        assert segment_names() == before

    def test_small_result_detached_from_segment(self):
        items = [big_table(s) for s in range(2)]
        out = Executor(backend="processes", max_workers=2).map(head_rows, items)
        for a, b in zip(items, out):
            assert b.n_rows == 4
            assert np.array_equal(b["power"], a["power"][:4])

    def test_shm_disabled_still_correct(self):
        items = [big_table(s) for s in range(2)]
        ex = Executor(backend="processes", max_workers=2, use_shm=False)
        serial = Executor(backend="serial").map(double_power, items)
        for a, b in zip(serial, ex.map(double_power, items)):
            assert np.array_equal(a["power"], b["power"])

    def test_spawn_context(self):
        items = [big_table(s) for s in range(2)]
        before = segment_names()
        ex = Executor(backend="processes", max_workers=2, mp_context="spawn")
        out = ex.map(double_power, items)
        for a, b in zip(items, out):
            assert np.array_equal(b["power"], a["power"] * 2.0)
        assert segment_names() == before


class TestMmapTransport:
    """Tables backed by .rcs mmaps ship by path, not by copy."""

    @staticmethod
    def rcs_table(tmp_path, name="t.rcs", columns=None, rows=None):
        from repro.frame.columnar import open_rcs, save_rcs

        p = tmp_path / name
        if not p.exists():
            # raw layout: the mmap fast path only exists for raw columns
            save_rcs(big_table(n=2_000), p, compression="off")
        return open_rcs(p).read(columns, rows=rows)

    def test_plain_table_not_mmap(self):
        from repro.parallel import mmap_ref

        assert mmap_ref(big_table(n=100)) is None

    def test_encoded_columns_fall_back_to_copy(self, tmp_path):
        """Compressed shards decode into plain arrays: no mmap ref.

        ``wrap_item`` must then take the shm-copy route, which is what
        the process transport does for any non-mapped table.
        """
        from repro.frame.columnar import open_rcs, save_rcs
        from repro.parallel import mmap_ref
        from repro.parallel.shm import (
            SharedTableRef,
            release,
            wrap_item,
        )

        t = Table({"t": np.arange(16_384, dtype=np.float64)})
        save_rcs(t, tmp_path / "enc.rcs", compression="auto")
        rf = open_rcs(tmp_path / "enc.rcs")
        assert rf.has_encoded
        out = rf.read()
        assert mmap_ref(out) is None
        owned: list = []
        try:
            wrapped = wrap_item(out, owned)
            assert isinstance(wrapped, SharedTableRef)
            back = materialize(wrapped, unlink=False)
            assert np.array_equal(back["t"], t["t"])
        finally:
            for seg in owned:
                release(seg)

    def test_ref_roundtrip(self, tmp_path):
        from repro.parallel import MmapTableRef, attach_mmap, mmap_ref

        t = self.rcs_table(tmp_path)
        ref = mmap_ref(t)
        assert isinstance(ref, MmapTableRef)
        assert ref.n_rows == t.n_rows
        out = attach_mmap(ref)
        assert out.columns == t.columns
        for c in t.columns:
            assert out[c].dtype == t[c].dtype
            assert np.array_equal(out[c], t[c])

    def test_projected_and_sliced_views_roundtrip(self, tmp_path):
        from repro.parallel import attach_mmap, mmap_ref

        t = self.rcs_table(tmp_path, columns=["power", "node"],
                           rows=slice(100, 900))
        ref = mmap_ref(t)
        assert ref is not None
        out = attach_mmap(ref)
        assert np.array_equal(out["power"], t["power"])
        assert np.array_equal(out["node"], t["node"])

    def test_wrap_item_prefers_mmap(self, tmp_path):
        from repro.parallel import MmapTableRef
        from repro.parallel.shm import unwrap_item, wrap_item

        t = self.rcs_table(tmp_path)
        owned: list = []
        wrapped = wrap_item(t, owned)
        assert isinstance(wrapped, MmapTableRef)
        assert owned == []  # nothing copied, nothing to clean up
        (out, handles) = unwrap_item(wrapped)
        assert handles == []
        assert np.array_equal(out["power"], t["power"])

    def test_masked_rows_fall_back_to_shm(self, tmp_path):
        # a boolean-mask filter materializes fresh arrays: no common mmap
        from repro.parallel import mmap_ref

        t = self.rcs_table(tmp_path)
        masked = t.filter(np.arange(t.n_rows) % 2 == 0)
        assert mmap_ref(masked) is None

    def test_process_map_over_rcs_tables(self, tmp_path):
        items = [
            self.rcs_table(tmp_path, name=f"s{i}.rcs") for i in range(3)
        ]
        before = segment_names()
        serial = Executor(backend="serial").map(double_power, items)
        proc = Executor(backend="processes", max_workers=2).map(
            double_power, items
        )
        for a, b in zip(serial, proc):
            assert a.columns == b.columns
            for c in a.columns:
                assert np.array_equal(a[c], b[c])
        # mmap transport creates no shared-memory segments for the items
        assert segment_names() == before

"""Unit + property tests for the distributed algorithms."""

import numpy as np
import pytest

from repro.frame import Table, group_by
from repro.parallel import (
    Executor,
    PartitionedDataset,
    grouped_aggregate,
    map_partitions,
    tree_reduce,
)


def build_dataset(tmp_path, tables):
    ds = PartitionedDataset.create(tmp_path / "ds", "t")
    t0 = 0.0
    for t in tables:
        ds.append(t, t0, t0 + 10.0)
        t0 += 10.0
    return ds


@pytest.fixture()
def dataset(tmp_path, rng):
    tables = []
    for _ in range(5):
        n = int(rng.integers(5, 40))
        tables.append(
            Table(
                {
                    "k": rng.integers(0, 6, n),
                    "v": rng.normal(100.0, 10.0, n),
                }
            )
        )
    return build_dataset(tmp_path, tables)


class TestMapPartitions:
    def test_row_counts(self, dataset):
        counts = map_partitions(dataset, lambda t: t.n_rows)
        assert counts == [dataset.read(i).n_rows for i in range(5)]

    def test_serial_and_threads_agree(self, dataset):
        f = lambda t: float(t["v"].sum())
        a = map_partitions(dataset, f, Executor(backend="serial"))
        b = map_partitions(dataset, f, Executor(backend="threads"))
        assert a == b


class TestTreeReduce:
    def test_sum(self):
        assert tree_reduce(list(range(10)), lambda a, b: a + b) == 45

    def test_single_item(self):
        assert tree_reduce([7], lambda a, b: a + b) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tree_reduce([], lambda a, b: a + b)

    def test_odd_counts(self):
        for n in (2, 3, 5, 7, 9):
            assert tree_reduce(list(range(n)), lambda a, b: a + b) == sum(range(n))


class TestGroupedAggregate:
    def test_matches_single_pass(self, dataset):
        dist = grouped_aggregate(dataset, ["k"], "v")
        whole = dataset.to_table()
        ref = group_by(
            whole,
            "k",
            {
                "count": "count",
                "sum": ("v", "sum"),
                "mean": ("v", "mean"),
                "min": ("v", "min"),
                "max": ("v", "max"),
                "std": ("v", "std"),
            },
        )
        dist = dist.sort("k")
        ref = ref.sort("k")
        assert np.array_equal(dist["k"], ref["k"])
        for col in ("count", "sum", "mean", "min", "max", "std"):
            assert np.allclose(dist[col], ref[col], rtol=1e-9, atol=1e-9), col

    def test_partitioning_invariance(self, tmp_path, rng):
        """The result must not depend on how rows are split into shards."""
        n = 200
        base = Table({"k": rng.integers(0, 4, n), "v": rng.normal(size=n)})
        # two different splits
        ds1 = build_dataset(tmp_path / "a", [base[:50], base[50:]])
        cuts = [0, 13, 99, 150, n]
        ds2 = build_dataset(
            tmp_path / "b",
            [base[a:b] for a, b in zip(cuts[:-1], cuts[1:])],
        )
        g1 = grouped_aggregate(ds1, ["k"], "v").sort("k")
        g2 = grouped_aggregate(ds2, ["k"], "v").sort("k")
        for col in ("count", "mean", "std", "min", "max"):
            assert np.allclose(g1[col], g2[col], rtol=1e-9, atol=1e-9)

    def test_process_backend(self, dataset):
        out = grouped_aggregate(
            dataset, ["k"], "v", Executor(backend="processes", max_workers=2)
        )
        assert out.n_rows >= 1


class TestMapToDataset:
    def test_derived_dataset(self, dataset, tmp_path):
        from repro.parallel import map_partitions_to_dataset

        def double(t: Table) -> Table:
            return t.with_column("v", t["v"] * 2.0)

        out = map_partitions_to_dataset(
            dataset, double, tmp_path / "derived", "doubled"
        )
        assert out.n_partitions == dataset.n_partitions
        for i in range(out.n_partitions):
            assert np.allclose(out.read(i)["v"], dataset.read(i)["v"] * 2.0)
        # time ranges inherited
        assert out.time_range == dataset.time_range

    def test_reopens_from_disk(self, dataset, tmp_path):
        from repro.parallel import PartitionedDataset, map_partitions_to_dataset

        map_partitions_to_dataset(
            dataset, lambda t: t, tmp_path / "copy", "copy"
        )
        again = PartitionedDataset(tmp_path / "copy")
        assert again.n_rows == dataset.n_rows

"""Unit tests for the Executor backends."""

import numpy as np
import pytest

from repro.parallel import Executor
from repro.parallel.executor import default_workers, _StarCall


def square(x):
    return x * x


def boom(x):
    raise RuntimeError("partition failed")


class TestExecutor:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_map_preserves_order(self, backend):
        ex = Executor(backend=backend, max_workers=2)
        assert ex.map(square, range(10)) == [i * i for i in range(10)]

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            Executor(backend="gpu")

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_exceptions_propagate(self, backend):
        ex = Executor(backend=backend)
        with pytest.raises(RuntimeError, match="partition failed"):
            ex.map(boom, [1, 2])

    def test_starmap(self):
        ex = Executor(backend="serial")
        assert ex.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]

    def test_starmap_threads(self):
        ex = Executor(backend="threads", max_workers=2)
        assert ex.starmap(pow, [(2, 3), (3, 2), (2, 5)]) == [8, 9, 32]

    def test_single_item_runs_inline(self):
        ex = Executor(backend="processes")
        assert ex.map(square, [4]) == [16]

    def test_empty_items(self):
        assert Executor().map(square, []) == []

    def test_starcall_picklable(self):
        import pickle

        sc = _StarCall(pow)
        sc2 = pickle.loads(pickle.dumps(sc))
        assert sc2((2, 4)) == 16

    def test_numpy_payloads(self):
        ex = Executor(backend="threads", max_workers=3)
        arrays = [np.full(10, i) for i in range(5)]
        out = ex.map(np.sum, arrays)
        assert out == [0, 10, 20, 30, 40]

    def test_repr(self):
        assert "threads" in repr(Executor(backend="threads"))

"""Unit tests for the Executor backends."""

import numpy as np
import pytest

from repro.parallel import Executor, NotPicklableError
from repro.parallel.executor import default_workers, _StarCall


def square(x):
    return x * x


def boom(x):
    raise RuntimeError("partition failed")


class TestExecutor:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_map_preserves_order(self, backend):
        ex = Executor(backend=backend, max_workers=2)
        assert ex.map(square, range(10)) == [i * i for i in range(10)]

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            Executor(backend="gpu")

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_exceptions_propagate(self, backend):
        ex = Executor(backend=backend)
        with pytest.raises(RuntimeError, match="partition failed"):
            ex.map(boom, [1, 2])

    def test_starmap(self):
        ex = Executor(backend="serial")
        assert ex.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]

    def test_starmap_threads(self):
        ex = Executor(backend="threads", max_workers=2)
        assert ex.starmap(pow, [(2, 3), (3, 2), (2, 5)]) == [8, 9, 32]

    def test_single_item_runs_inline(self):
        ex = Executor(backend="processes")
        assert ex.map(square, [4]) == [16]

    def test_empty_items(self):
        assert Executor().map(square, []) == []

    def test_starcall_picklable(self):
        import pickle

        sc = _StarCall(pow)
        sc2 = pickle.loads(pickle.dumps(sc))
        assert sc2((2, 4)) == 16

    def test_numpy_payloads(self):
        ex = Executor(backend="threads", max_workers=3)
        arrays = [np.full(10, i) for i in range(5)]
        out = ex.map(np.sum, arrays)
        assert out == [0, 10, 20, 30, 40]

    def test_repr(self):
        assert "threads" in repr(Executor(backend="threads"))


class TestDefaultWorkersEnv:
    def test_env_caps_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
        assert default_workers() == 1

    def test_env_never_drops_below_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_MAX_WORKERS", "-3")
        assert default_workers() == 1

    def test_env_cannot_raise_above_heuristic(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        base = default_workers()
        monkeypatch.setenv("REPRO_MAX_WORKERS", str(base + 100))
        assert default_workers() == base

    def test_env_non_integer_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_MAX_WORKERS"):
            default_workers()

    def test_executor_picks_up_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
        assert Executor(backend="threads").max_workers == 1


class TestProcessBackendErrors:
    def test_lambda_raises_clear_error(self):
        ex = Executor(backend="processes", max_workers=2)
        with pytest.raises(NotPicklableError, match="picklable"):
            ex.map(lambda x: x + 1, [1, 2, 3])

    def test_not_picklable_is_a_type_error(self):
        assert issubclass(NotPicklableError, TypeError)

    def test_closure_raises_clear_error(self):
        bound = 10

        def closure(x):
            return x + bound

        ex = Executor(backend="processes", max_workers=2)
        with pytest.raises(NotPicklableError):
            ex.map(closure, [1, 2])

    def test_single_item_lambda_is_fine(self):
        # <= 1 item falls back to inline execution, so no pickling needed
        ex = Executor(backend="processes")
        assert ex.map(lambda x: x + 1, [41]) == [42]

    def test_exceptions_propagate_from_workers(self):
        ex = Executor(backend="processes", max_workers=2)
        with pytest.raises(RuntimeError, match="partition failed"):
            ex.map(boom, [1, 2])

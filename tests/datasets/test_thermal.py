"""Unit tests for the thermal dataset builders (Datasets 8-11 analogues)."""

import numpy as np
import pytest

from repro.datasets import (
    temperature_band_counts,
    thermal_cluster_series,
    thermal_job_series,
)
from repro.datasets.thermal import DEFAULT_BANDS, HOT_THRESHOLD_C


class TestBandCounts:
    def test_partition(self):
        temps = np.array([25.0, 35.0, 45.0, 52.0, 57.0, 62.0, 67.0, 80.0])
        counts = temperature_band_counts(temps)
        assert counts.sum() == len(temps)
        assert len(counts) == len(DEFAULT_BANDS) + 1
        assert counts[0] == 1          # < 30
        assert counts[-1] == 1         # >= 70

    def test_nan_excluded(self):
        counts = temperature_band_counts(np.array([45.0, np.nan]))
        assert counts.sum() == 1

    def test_boundary_left_closed(self):
        counts = temperature_band_counts(np.array([40.0]))
        # 40.0 belongs to [40, 50), i.e. index 2
        assert counts[2] == 1


class TestClusterSeries:
    @pytest.fixture(scope="class")
    def series(self, twin):
        return thermal_cluster_series(twin, 0.0, 600.0, dt=10.0)

    def test_shape(self, twin, series):
        assert series.n_rows == 60
        assert "gpu_core_mean" in series and "mtwrt" in series

    def test_band_counts_partition_gpus(self, twin, series):
        band_cols = [c for c in series.columns if c.startswith("band_")]
        total = sum(series[c] for c in band_cols)
        assert np.array_equal(total, series["n_reporting"])
        assert series["n_reporting"].max() <= twin.config.n_gpus

    def test_temperatures_physical(self, series):
        assert np.nanmin(series["gpu_core_mean"]) > 15.0
        assert np.nanmax(series["gpu_core_max"]) < 95.0
        assert np.all(series["gpu_core_max"] >= series["gpu_core_mean"])

    def test_hot_count_consistent(self, series):
        ge_cols = [c for c in series.columns if c.startswith("band_ge_")]
        # every "hot" GPU is at least in the >= 65 C region when the top
        # band starts at 70: n_hot >= band_ge_70
        assert np.all(series["n_hot"] >= series[ge_cols[0]] - 1e-9)


class TestJobSeries:
    def test_one_job(self, twin):
        al = twin.schedule.allocations
        # pick a longer job
        idx = int(np.argmax(al["end_time"] - al["begin_time"]))
        aid = int(al["allocation_id"][idx])
        try:
            js = thermal_job_series(twin, aid, dt=10.0)
        except MemoryError:
            pytest.skip("job window too large for dense build")
        assert js.n_rows >= 1
        assert np.all(js["allocation_id"] == aid)
        nodes = twin.schedule.nodes_of(aid)
        assert js["n_reporting"].max() == len(nodes) * twin.config.gpus_per_node

    def test_unknown_job(self, twin):
        with pytest.raises(KeyError):
            thermal_job_series(twin, 99_999_999)

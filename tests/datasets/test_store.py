"""Unit tests for dataset export and inventory."""

import numpy as np
import pytest

from repro.datasets import export_datasets, dataset_inventory
from repro.frame.io import read_csv
from repro.parallel import PartitionedDataset


@pytest.fixture(scope="module")
def exported(twin, tmp_path_factory):
    root = tmp_path_factory.mktemp("export")
    inv = export_datasets(twin, root)
    return root, inv


class TestExport:
    def test_files_exist(self, exported):
        root, _ = exported
        for name in ("allocations.csv", "node_allocations.csv", "xid_log.csv"):
            assert (root / name).exists()
        assert (root / "job_series" / "manifest.json").exists()
        assert (root / "cluster_power" / "manifest.json").exists()

    def test_allocations_roundtrip(self, twin, exported):
        root, _ = exported
        back = read_csv(root / "allocations.csv")
        assert back.n_rows == twin.schedule.allocations.n_rows
        assert np.array_equal(
            np.sort(back["allocation_id"]),
            np.sort(twin.schedule.allocations["allocation_id"]),
        )

    def test_job_series_partitioned_by_day(self, twin, exported):
        root, _ = exported
        ds = PartitionedDataset(root / "job_series")
        assert ds.n_partitions >= 1
        assert ds.n_rows == twin.job_series().n_rows

    def test_inventory_counts(self, twin, exported):
        _, inv = exported
        assert inv["telemetry_rows"] == int(
            twin.config.n_nodes * twin.spec.horizon_s
        )
        assert inv["xid_rows"] == twin.failures.n_failures
        assert inv["allocations_rows"] == twin.schedule.allocations.n_rows
        assert inv["telemetry_metric_samples"] > inv["telemetry_rows"] * 100

    def test_inventory_on_disk_sizes(self, exported):
        _, inv = exported
        sizes = inv["on_disk_bytes"]
        assert sizes["node_allocations.csv"] > sizes["allocations.csv"] / 10
        assert sizes["job_series"] > 0

    def test_inventory_without_root(self, twin):
        inv = dataset_inventory(twin)
        assert "on_disk_bytes" not in inv

    def test_table2_ordering(self, twin, exported):
        """Table 2 shape: telemetry >> per-node alloc history > alloc
        history > XID log (rows)."""
        _, inv = exported
        assert inv["telemetry_rows"] > 100 * inv["node_allocation_rows"]
        assert inv["node_allocation_rows"] > inv["allocations_rows"]

"""Unit tests for dataset export and inventory."""

import numpy as np
import pytest

from repro.datasets import export_datasets, dataset_inventory
from repro.frame.io import read_csv
from repro.parallel import PartitionedDataset


@pytest.fixture(scope="module")
def exported(twin, tmp_path_factory):
    root = tmp_path_factory.mktemp("export")
    inv = export_datasets(twin, root)
    return root, inv


class TestExport:
    def test_files_exist(self, exported):
        root, _ = exported
        for name in ("allocations.csv", "node_allocations.csv", "xid_log.csv"):
            assert (root / name).exists()
        assert (root / "job_series" / "manifest.json").exists()
        assert (root / "cluster_power" / "manifest.json").exists()

    def test_allocations_roundtrip(self, twin, exported):
        root, _ = exported
        back = read_csv(root / "allocations.csv")
        assert back.n_rows == twin.schedule.allocations.n_rows
        assert np.array_equal(
            np.sort(back["allocation_id"]),
            np.sort(twin.schedule.allocations["allocation_id"]),
        )

    def test_job_series_partitioned_by_day(self, twin, exported):
        root, _ = exported
        ds = PartitionedDataset(root / "job_series")
        assert ds.n_partitions >= 1
        assert ds.n_rows == twin.job_series().n_rows

    def test_inventory_counts(self, twin, exported):
        _, inv = exported
        assert inv["telemetry_rows"] == int(
            twin.config.n_nodes * twin.spec.horizon_s
        )
        assert inv["xid_rows"] == twin.failures.n_failures
        assert inv["allocations_rows"] == twin.schedule.allocations.n_rows
        assert inv["telemetry_metric_samples"] > inv["telemetry_rows"] * 100

    def test_inventory_on_disk_sizes(self, exported):
        _, inv = exported
        sizes = inv["on_disk_bytes"]
        assert sizes["node_allocations.csv"] > sizes["allocations.csv"] / 10
        assert sizes["job_series"] > 0

    def test_inventory_without_root(self, twin):
        inv = dataset_inventory(twin)
        assert "on_disk_bytes" not in inv

    def test_table2_ordering(self, twin, exported):
        """Table 2 shape: telemetry >> per-node alloc history > alloc
        history > XID log (rows)."""
        _, inv = exported
        assert inv["telemetry_rows"] > 100 * inv["node_allocation_rows"]
        assert inv["node_allocation_rows"] > inv["allocations_rows"]


class TestWritePartitionedSeries:
    """Sorted fast path (searchsorted slices) == mask fallback, bit for bit."""

    @staticmethod
    def series(n=500, seed=7):
        rng = np.random.default_rng(seed)
        ts = np.sort(rng.uniform(0.0, 3.5 * 86_400.0, n))
        return ts, rng.normal(1e6, 1e4, n)

    def test_sorted_and_shuffled_inputs_write_identical_rows(self, tmp_path):
        from repro.datasets.store import write_partitioned_series
        from repro.frame.table import Table

        ts, v = self.series()
        srt = Table({"timestamp": ts, "sum_inp": v})
        perm = np.random.default_rng(0).permutation(len(ts))
        shuffled = srt.take(perm)

        a = write_partitioned_series(srt, tmp_path, "fast")
        b = write_partitioned_series(shuffled, tmp_path, "slow")
        assert a.n_partitions == b.n_partitions
        for i in range(a.n_partitions):
            ta = a.read(i)
            tb = b.read(i).sort("timestamp")
            assert ta.columns == tb.columns
            for c in ta.columns:
                assert np.array_equal(ta[c], tb[c]), (i, c)

    def test_sorted_path_skips_empty_days(self, tmp_path):
        from repro.datasets.store import write_partitioned_series
        from repro.frame.table import Table

        day = 86_400.0
        ts = np.array([0.5 * day, 2.5 * day])  # day 1 has no samples
        t = Table({"timestamp": ts, "sum_inp": np.ones(2)})
        ds = write_partitioned_series(t, tmp_path, "gappy")
        assert ds.n_partitions == 2
        assert [p.t_begin for p in ds.partitions] == [0.0, 2.0 * day]

    def test_day_slices_match_masks(self, tmp_path):
        from repro.datasets.store import write_partitioned_series
        from repro.frame.table import Table

        ts, v = self.series(n=1000, seed=11)
        t = Table({"timestamp": ts, "sum_inp": v})
        ds = write_partitioned_series(t, tmp_path, "s")
        for p in ds.partitions:
            want = t.filter((ts >= p.t_begin) & (ts < p.t_end))
            got = ds.read(p.index)
            assert np.array_equal(got["timestamp"], want["timestamp"])
            assert np.array_equal(got["sum_inp"], want["sum_inp"])

"""Unit tests for twin simulation and direct dataset synthesis."""

import numpy as np
import pytest

from repro.datasets import (
    SimulationSpec,
    cluster_power_direct,
    simulate_twin,
)


class TestSpec:
    def test_config_scaling(self):
        spec = SimulationSpec(n_nodes=90)
        assert spec.config().n_nodes == 90

    def test_defaults(self):
        spec = SimulationSpec()
        assert spec.horizon_s == 7 * 86_400.0


class TestTwin:
    def test_components_cached(self, twin):
        assert twin.builder is twin.builder
        assert twin.failures is twin.failures

    def test_job_series_columns(self, job_series):
        assert set(job_series.columns) == {
            "allocation_id", "timestamp", "count_hostname",
            "sum_inp", "mean_inp", "max_inp",
        }

    def test_job_series_covers_started_jobs(self, twin, job_series):
        series_ids = set(np.unique(job_series["allocation_id"]).tolist())
        started = twin.schedule.allocations
        # jobs shorter than one sample grid step may be absent; all others
        # must appear
        long_enough = started.filter(
            (started["end_time"] - started["begin_time"]) >= 20.0
        )
        missing = set(long_enough["allocation_id"].tolist()) - series_ids
        assert not missing

    def test_job_series_component_columns(self, job_series_components):
        for c in ("mean_cpu_power", "max_gpu_power", "std_gpu_power"):
            assert c in job_series_components

    def test_component_power_bounds(self, twin, job_series_components):
        cfg = twin.config
        j = job_series_components
        assert j["max_gpu_power"].max() <= cfg.gpus_per_node * cfg.gpu_tdp_w * 1.1
        assert j["max_cpu_power"].max() <= cfg.cpus_per_node * cfg.cpu_tdp_w * 1.05
        assert j["mean_gpu_power"].min() >= 0

    def test_series_timestamps_grid_aligned(self, job_series):
        assert np.allclose(job_series["timestamp"] % 10.0, 0.0)

    def test_sum_mean_consistent(self, job_series):
        expect = job_series["mean_inp"] * job_series["count_hostname"]
        assert np.allclose(job_series["sum_inp"], expect, rtol=1e-9)

    def test_cluster_power_envelope(self, twin):
        times, power = twin.cluster_power(dt=60.0)
        cfg = twin.config
        idle = cfg.n_nodes * cfg.node_idle_w
        assert power.min() >= idle * 0.98
        assert power.max() <= cfg.n_nodes * cfg.node_max_power_w
        assert power.mean() > idle * 1.2  # the machine is actually busy

    def test_plant_state_over_horizon(self, twin):
        st = twin.plant_state(dt=120.0)
        assert st.pue.min() > 1.0
        assert len(st.times) == int(twin.spec.horizon_s / 120.0)


class TestDirectVsPipeline:
    def test_cluster_direct_matches_builder(self, twin):
        """The O(job-samples) superposition must equal the dense builder."""
        t0, t1, dt = 0.0, 1800.0, 10.0
        arr = twin.builder.build(t0, t1, dt)
        times, power = cluster_power_direct(
            twin.catalog, twin.schedule, twin.chips,
            horizon_s=t1, dt=dt, seed=twin.spec.seed,
        )
        sel = (times >= t0) & (times < t1)
        assert np.allclose(power[sel], arr.cluster_power_w(), rtol=1e-9)

    def test_job_series_matches_builder_window(self, twin, job_series):
        """Direct per-job series equals the dense-trace aggregation."""
        al = twin.schedule.allocations
        # a job fully inside the first hour
        inside = (al["begin_time"] >= 0) & (al["end_time"] <= 3600.0) & (
            al["end_time"] - al["begin_time"] >= 60.0
        )
        if not inside.any():
            pytest.skip("no suitable job in window")
        aid = int(al["allocation_id"][inside][0])
        arr = twin.builder.build(0.0, 3600.0, 10.0, track_alloc=True)
        nodes = twin.schedule.nodes_of(aid)
        mask = arr.node_alloc[nodes[0]] == aid
        dense_sum = arr.node_input_w[nodes][:, mask].sum(axis=0)
        mine = job_series.filter(job_series["allocation_id"] == aid)
        mine = mine.filter(
            (mine["timestamp"] >= arr.times[mask].min())
            & (mine["timestamp"] <= arr.times[mask].max())
        )
        assert np.allclose(np.sort(mine["sum_inp"]), np.sort(dense_sum), rtol=1e-9)

"""TelemetryReplaySource over a PartitionedDataset == over the same table."""

import numpy as np
import pytest

from repro.stream import TelemetryReplaySource


def build_dataset(telemetry, root, fmt):
    from repro.parallel.partition import PartitionedDataset

    ds = PartitionedDataset.create(root, "telemetry")
    t = telemetry["timestamp"]
    for lo in np.arange(0.0, float(t.max()) + 1.0, 300.0):
        ds.append(
            telemetry.filter((t >= lo) & (t < lo + 300.0)), lo, lo + 300.0,
            fmt=fmt,
        )
    return ds


def drain(source):
    batches = []
    while (b := source.next_batch()) is not None:
        batches.append(b)
    return batches


class TestDatasetReplay:
    @pytest.mark.parametrize("fmt", ["rcs", "npz"])
    def test_batches_identical_to_table_replay(self, telemetry, tmp_path, fmt):
        ds = build_dataset(telemetry, tmp_path / fmt, fmt)
        ref = TelemetryReplaySource(telemetry, skew=False, seed=5)
        got = TelemetryReplaySource(ds, skew=False, seed=5)
        a, b = drain(ref), drain(got)
        assert len(a) == len(b)
        for ba, bb in zip(a, b):
            assert ba.arrival_time == bb.arrival_time
            assert ba.table.columns == bb.table.columns
            for c in ba.table.columns:
                assert np.array_equal(ba.table[c], bb.table[c]), c

    def test_projected_replay(self, telemetry, tmp_path):
        ds = build_dataset(telemetry, tmp_path / "proj", "rcs")
        src = TelemetryReplaySource(
            ds, columns=["input_power"], skew=False, seed=5
        )
        # event time always rides along; node too (loss events mask by node)
        assert set(src.table.columns) == {"input_power", "timestamp", "node"}
        assert src.rows_total == telemetry.n_rows

    def test_projected_table_replay_matches(self, telemetry):
        full = TelemetryReplaySource(telemetry, skew=False, seed=5)
        proj = TelemetryReplaySource(
            telemetry, columns=["input_power"], skew=False, seed=5
        )
        assert np.array_equal(
            proj.table["input_power"], full.table["input_power"]
        )

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="Table or PartitionedDataset"):
            TelemetryReplaySource({"timestamp": [1.0]})

"""Fixtures for the streaming subsystem tests.

A 20-minute 1 Hz telemetry slice of the session twin, plus the batch
reference results every equivalence test compares against.  The batch
side runs on the telemetry sorted by timestamp because that is the row
order a skew-free replay delivers (stable sort, ties in archive order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import cluster_power_series
from repro.core.coarsen import coarsen_telemetry


TELEMETRY_SPAN_S = 1200.0


@pytest.fixture(scope="session")
def telemetry(twin):
    arrays = twin.builder.build(0.0, TELEMETRY_SPAN_S, 1.0)
    return twin.sampler().sample(arrays)


@pytest.fixture(scope="session")
def batch_coarse(telemetry):
    return coarsen_telemetry(telemetry.sort("timestamp"), ["input_power"])


@pytest.fixture(scope="session")
def batch_series(batch_coarse):
    return cluster_power_series(batch_coarse)


@pytest.fixture(scope="session")
def edge_threshold(batch_series) -> float:
    """A threshold low enough that the twin's 20-minute slice has edges."""
    steps = np.abs(np.diff(batch_series["sum_inp"]))
    thr = float(np.quantile(steps[steps > 0], 0.7))
    assert thr > 0
    return thr

"""Watermark accounting: every lost sample is explained, none silently.

With path skew and a deliberately tight lateness bound, some rows arrive
after their window finalized; the operator must count exactly those rows
as late.  With loss events, the source must count exactly the punctured
rows.  The invariant in all cases:

    rows replayed == rows in finalized windows + late + NaN-dropped
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.frame.window import window_index
from repro.stream import (
    BoundedLatenessWatermark,
    StreamGraph,
    StreamingCoarsen,
    TelemetryReplaySource,
)
from repro.telemetry.collector import LossEvent
from repro.telemetry.ingest import (
    AGGREGATION_MAX_S,
    ANALYSIS_HOP_S,
    BMC_EMIT_JITTER_S,
    FAN_IN_BATCH_S,
)

MAX_PATH_SKEW_S = (
    BMC_EMIT_JITTER_S + FAN_IN_BATCH_S + AGGREGATION_MAX_S + ANALYSIS_HOP_S
)


class TestWatermark:
    def test_starts_at_minus_inf(self):
        wm = BoundedLatenessWatermark(5.0)
        assert wm.current == -math.inf

    def test_advances_monotonically(self):
        wm = BoundedLatenessWatermark(2.0)
        assert wm.observe([10.0, 12.0]) == 10.0
        assert wm.observe([5.0]) == 10.0  # never regresses
        assert wm.observe([20.0]) == 18.0

    def test_rejects_negative_lateness(self):
        with pytest.raises(ValueError, match="lateness_s"):
            BoundedLatenessWatermark(-1.0)

    def test_state_roundtrip(self):
        wm = BoundedLatenessWatermark(3.0)
        wm.observe([42.0])
        wm2 = BoundedLatenessWatermark(0.0)
        wm2.load_state(wm.state_dict())
        assert wm2.current == wm.current


def _coarsen_graph(telemetry, lateness_s, skew=True, seed=5, loss_events=()):
    source = TelemetryReplaySource(
        telemetry, skew=skew, seed=seed, loss_events=loss_events
    )
    graph = StreamGraph(source)
    graph.add(StreamingCoarsen(["input_power"], lateness_s=lateness_s),
              collect=True)
    return graph


class TestLateAccounting:
    def test_generous_lateness_nothing_late(self, telemetry):
        graph = _coarsen_graph(telemetry, lateness_s=MAX_PATH_SKEW_S)
        graph.run()
        assert graph.stats.node("coarsen").late_rows == 0

    def test_tight_lateness_drops_are_counted_exactly(self, telemetry):
        graph = _coarsen_graph(telemetry, lateness_s=0.0)
        graph.run()
        op_late = graph.stats.node("coarsen").late_rows
        assert op_late > 0, "zero lateness under ~6.5 s skew must lose rows"

        # independently predict which rows are late by replaying the
        # arrival sequence: a row is late iff its window index is below
        # the finalization bound ratcheted by previous batches
        src = graph.source
        event = np.asarray(src.table["timestamp"], dtype=np.float64)
        win = window_index(event, 10.0)
        arrivals = src.arrival_times
        tick = np.floor(arrivals / src.batch_interval_s).astype(np.int64)
        predicted = 0
        bound = None
        max_event = -math.inf
        start = 0
        while start < len(event):
            end = start
            while end < len(event) and tick[end] == tick[start]:
                end += 1
            if bound is not None:
                predicted += int((win[start:end] < bound).sum())
            max_event = max(max_event, float(event[start:end].max()))
            new_bound = int(np.floor(max_event / 10.0))
            bound = new_bound if bound is None else max(bound, new_bound)
            start = end
        assert op_late == predicted

    def test_every_row_accounted_for(self, telemetry):
        graph = _coarsen_graph(telemetry, lateness_s=0.0)
        graph.run()
        st = graph.stats.node("coarsen")
        coarse = graph.result("coarsen")
        in_windows = int(coarse["count"].sum())
        assert (in_windows + st.late_rows + st.nan_rows
                == graph.source.rows_emitted)

    def test_skew_free_replay_is_in_event_order(self, telemetry):
        src = TelemetryReplaySource(telemetry, skew=False, seed=5)
        t = src.table["timestamp"]
        assert np.all(np.diff(np.asarray(t, dtype=np.float64)) >= 0)
        assert np.array_equal(src.arrival_times,
                              np.asarray(t, dtype=np.float64))


class TestLossAccounting:
    def test_scope_all_drops_rows(self, telemetry):
        ev = LossEvent(t_begin=300.0, t_end=420.0, scope="all")
        graph = _coarsen_graph(
            telemetry, lateness_s=MAX_PATH_SKEW_S, loss_events=[ev]
        )
        graph.run()
        src = graph.source
        t = np.asarray(telemetry["timestamp"], dtype=np.float64)
        node = telemetry["node"]
        expected = int(ev.mask(node, t).sum())
        assert expected > 0
        assert src.loss_dropped == expected
        assert src.rows_emitted == src.rows_total - expected
        # the surviving rows still fully account
        st = graph.stats.node("coarsen")
        coarse = graph.result("coarsen")
        assert (int(coarse["count"].sum()) + st.late_rows + st.nan_rows
                == src.rows_emitted)

    def test_power_blanking_lands_in_nan_accounting(self, telemetry):
        ev = LossEvent(t_begin=600.0, t_end=660.0, scope="power")
        graph = _coarsen_graph(
            telemetry, lateness_s=MAX_PATH_SKEW_S, loss_events=[ev]
        )
        graph.run()
        src = graph.source
        st = graph.stats.node("coarsen")
        assert src.loss_blanked > 0
        assert st.nan_rows == src.loss_blanked
        coarse = graph.result("coarsen")
        assert (int(coarse["count"].sum()) + st.late_rows + st.nan_rows
                == src.rows_emitted)

    def test_unknown_scope_rejected(self, telemetry):
        ev = LossEvent(t_begin=0.0, t_end=10.0, scope="voltage")
        with pytest.raises(ValueError, match="scope"):
            TelemetryReplaySource(telemetry, loss_events=[ev])

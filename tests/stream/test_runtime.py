"""Runtime mechanics: scheduling, backpressure, and checkpoint/restore.

The headline guarantee: a stream paused mid-run, checkpointed, and resumed
into a freshly built graph finishes with exactly the outputs of an
uninterrupted run — operators, queued batches, source cursor and counters
all survive the round trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frame.table import Table, concat
from repro.stream import (
    Operator,
    RecordBatch,
    StreamGraph,
    StreamingClusterAggregate,
    StreamingCoarsen,
    StreamingEdgeDetector,
    StreamingPUE,
    TelemetryReplaySource,
)

COLLECTED = ("coarsen", "aggregate", "pue", "edges")


def build_graph(telemetry, threshold_w, skew=True, queue_capacity=4):
    source = TelemetryReplaySource(telemetry, skew=skew, seed=5)
    graph = StreamGraph(source, queue_capacity=queue_capacity)
    graph.add(StreamingCoarsen(["input_power"], lateness_s=3.0), collect=True)
    graph.add(StreamingClusterAggregate(), after="coarsen", collect=True)
    graph.add(StreamingEdgeDetector(threshold_w), after="aggregate",
              collect=True)
    graph.add(StreamingPUE(it="sum_inp"), after="aggregate", collect=True)
    return graph


def results(graph) -> dict[str, Table | None]:
    return {name: graph.result(name) for name in COLLECTED}


def merged(first, second) -> dict[str, Table | None]:
    out = {}
    for name in COLLECTED:
        parts = [t for t in (first[name], second[name]) if t is not None]
        out[name] = concat(parts) if parts else None
    return out


class TestCheckpointRestore:
    @pytest.mark.parametrize("pause_after", [1, 37, 120])
    def test_resume_equals_uninterrupted(self, telemetry, edge_threshold,
                                         pause_after):
        straight = build_graph(telemetry, edge_threshold)
        straight.run()
        reference = results(straight)

        half = build_graph(telemetry, edge_threshold)
        half.run(max_batches=pause_after)
        assert not half.source.exhausted
        state = half.state_dict()
        before = results(half)

        resumed = build_graph(telemetry, edge_threshold)
        resumed.load_state(state)
        resumed.run()
        combined = merged(before, results(resumed))

        for name in COLLECTED:
            if reference[name] is None:
                assert combined[name] is None
            else:
                assert combined[name] == reference[name], name
        # counters survive too: total late rows match the straight run
        assert (resumed.stats.total_late_rows
                == straight.stats.total_late_rows)

    def test_checkpoint_file_roundtrip(self, telemetry, edge_threshold,
                                       tmp_path):
        path = tmp_path / "stream.ckpt"
        half = build_graph(telemetry, edge_threshold)
        half.run(max_batches=40)
        half.save_checkpoint(path)
        before = results(half)

        straight = build_graph(telemetry, edge_threshold)
        straight.run()

        resumed = build_graph(telemetry, edge_threshold)
        resumed.load_checkpoint(path)
        resumed.run()
        combined = merged(before, results(resumed))
        assert combined["aggregate"] == straight.result("aggregate")

    def test_load_rejects_topology_mismatch(self, telemetry, edge_threshold):
        half = build_graph(telemetry, edge_threshold)
        half.run(max_batches=5)
        state = half.state_dict()

        other = StreamGraph(TelemetryReplaySource(telemetry, seed=5))
        other.add(StreamingCoarsen(["input_power"]))
        with pytest.raises(KeyError, match="topology"):
            other.load_state(state)


class _Amplifier(Operator):
    """Test operator: one input batch -> ``factor`` copies downstream."""

    name = "amplifier"

    def __init__(self, factor: int):
        self.factor = factor

    def process(self, batch):
        return [batch.with_table(batch.table) for _ in range(self.factor)]


class _Counter(Operator):
    name = "counter"

    def __init__(self):
        self.rows = 0

    def process(self, batch):
        self.rows += batch.n_rows
        return []


class TestBackpressure:
    def test_stalls_counted_and_nothing_lost(self, telemetry):
        source = TelemetryReplaySource(telemetry[:2000], skew=False, seed=5)
        graph = StreamGraph(source, queue_capacity=1)
        graph.add(_Amplifier(factor=5))
        counter = _Counter()
        graph.add(counter, after="amplifier")
        stats = graph.run()
        assert stats.total_stalls > 0
        # backpressure delayed batches but dropped none
        assert counter.rows == source.rows_emitted * 5
        assert stats.node("counter").max_queue == 1

    def test_queue_capacity_validated(self, telemetry):
        source = TelemetryReplaySource(telemetry[:100], seed=5)
        with pytest.raises(ValueError, match="queue_capacity"):
            StreamGraph(source, queue_capacity=0)


class TestGraphMechanics:
    def test_run_without_operators_fails(self, telemetry):
        graph = StreamGraph(TelemetryReplaySource(telemetry[:100], seed=5))
        with pytest.raises(RuntimeError, match="no operators"):
            graph.run()

    def test_unknown_upstream_rejected(self, telemetry):
        graph = StreamGraph(TelemetryReplaySource(telemetry[:100], seed=5))
        graph.add(StreamingCoarsen(["input_power"]))
        with pytest.raises(KeyError, match="upstream"):
            graph.add(StreamingPUE(), after="nope")

    def test_duplicate_names_get_suffixed(self, telemetry):
        graph = StreamGraph(TelemetryReplaySource(telemetry[:100], seed=5))
        first = graph.add(StreamingCoarsen(["input_power"]))
        second = graph.add(StreamingCoarsen(["input_power"]), after=first)
        assert first == "coarsen"
        assert second == "coarsen2"
        assert graph.node_names == ["coarsen", "coarsen2"]

    def test_fan_out_delivers_to_both_children(self, telemetry):
        source = TelemetryReplaySource(telemetry[:3000], skew=False, seed=5)
        graph = StreamGraph(source)
        graph.add(StreamingCoarsen(["input_power"]))
        graph.add(StreamingClusterAggregate(), after="coarsen")
        a = _Counter()
        b = _Counter()
        graph.add(a, after="aggregate", name="a")
        graph.add(b, after="aggregate", name="b")
        graph.run()
        assert a.rows == b.rows > 0

    def test_result_none_for_silent_node(self, telemetry):
        source = TelemetryReplaySource(telemetry[:50], skew=False, seed=5)
        graph = StreamGraph(source)
        # threshold so high nothing ever crosses
        graph.add(StreamingCoarsen(["input_power"]), collect=False)
        graph.add(StreamingClusterAggregate(), after="coarsen",
                  collect=False)
        graph.add(StreamingEdgeDetector(1e15), after="aggregate")
        graph.run()
        assert graph.result("edges") is None

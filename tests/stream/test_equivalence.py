"""Streaming == batch, bit for bit, on skew-free loss-free input.

The acceptance bar of the streaming subsystem: replaying telemetry with
zero path skew through the full stream graph must reproduce the batch
analyses exactly — not approximately — because the operators finalize
windows through the very same kernels over the same rows in the same
order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.edges import detect_edges
from repro.core.pue import pue_series
from repro.core.spectral import welch_psd
from repro.frame.table import Table
from repro.stream import (
    OnlineSpectral,
    RecordBatch,
    StreamGraph,
    StreamingClusterAggregate,
    StreamingCoarsen,
    StreamingEdgeDetector,
    StreamingPUE,
    TelemetryReplaySource,
)


def build_graph(telemetry, threshold_w, lateness_s=0.0, skew=False,
                queue_capacity=8, seed=5, loss_events=()):
    source = TelemetryReplaySource(
        telemetry, skew=skew, seed=seed, loss_events=loss_events
    )
    graph = StreamGraph(source, queue_capacity=queue_capacity)
    graph.add(StreamingCoarsen(["input_power"], lateness_s=lateness_s),
              collect=True)
    graph.add(StreamingClusterAggregate(), after="coarsen", collect=True)
    graph.add(StreamingEdgeDetector(threshold_w), after="aggregate")
    graph.add(StreamingPUE(it="sum_inp"), after="aggregate")
    return graph


@pytest.fixture(scope="module")
def run_graph(telemetry, edge_threshold):
    graph = build_graph(telemetry, edge_threshold)
    graph.run()
    return graph


class TestBitIdentical:
    def test_nothing_late_nothing_stalled(self, run_graph):
        assert run_graph.stats.total_late_rows == 0
        assert run_graph.source.loss_dropped == 0

    def test_coarsen_matches_batch(self, run_graph, batch_coarse):
        streamed = run_graph.result("coarsen")
        key = ["node", "timestamp"]
        assert streamed.sort(key) == batch_coarse.sort(key)

    def test_cluster_series_matches_batch(self, run_graph, batch_series):
        # emission order is already globally timestamp-ascending
        assert run_graph.result("aggregate") == batch_series

    def test_pue_matches_batch(self, run_graph, batch_series):
        streamed = run_graph.result("pue")
        it = batch_series["sum_inp"]
        expected = pue_series(it, 0.1 * it)
        assert np.array_equal(streamed["pue"], expected)
        # rolling column is a plain trailing mean of the instantaneous one
        assert np.isfinite(streamed["pue_roll"]).all()

    def test_edges_match_batch(self, run_graph, batch_series, edge_threshold):
        batch = detect_edges(
            batch_series["timestamp"], batch_series["sum_inp"], edge_threshold
        )
        assert batch.n_rows > 0, "fixture should produce edges"
        streamed = run_graph.result("edges")
        assert streamed is not None
        assert streamed.sort("start_index") == batch.sort("start_index")


class TestEdgeDetectorUnit:
    """Operator-level equivalence on synthetic series under odd batching."""

    def _series(self, seed, n=400):
        rng = np.random.default_rng(seed)
        power = np.cumsum(rng.normal(0.0, 1.0, n))
        jumps = rng.choice(n - 2, size=12, replace=False) + 1
        for j in jumps[:6]:
            power[j:] += 25.0  # sustained up-steps
        for j in jumps[6:]:
            power[j:] -= 25.0  # sustained down-steps
        times = np.arange(n, dtype=np.float64) * 10.0
        return times, power

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("chunks", [1, 7, 64])
    def test_matches_detect_edges(self, seed, chunks):
        times, power = self._series(seed)
        threshold = 8.0
        batch = detect_edges(times, power, threshold)
        op = StreamingEdgeDetector(threshold, value="power")
        out = []
        for s in range(0, len(times), chunks):
            t = Table({"timestamp": times[s:s + chunks],
                       "power": power[s:s + chunks]})
            out.extend(op.process(RecordBatch(table=t, arrival_time=0.0)))
        out.extend(op.flush())
        assert out, "synthetic series should produce edges"
        from repro.frame.table import concat

        streamed = concat([b.table for b in out]).sort("start_index")
        assert streamed == batch.sort("start_index")
        assert op.edges_found == batch.n_rows

    def test_truncated_edge_not_returned(self):
        # a big step right at the end never returns: batch and stream agree
        times = np.arange(6, dtype=np.float64)
        power = np.array([0.0, 0.0, 0.0, 0.0, 50.0, 50.0])
        batch = detect_edges(times, power, 10.0)
        op = StreamingEdgeDetector(10.0, value="power")
        out = op.process(RecordBatch(
            table=Table({"timestamp": times, "power": power}),
            arrival_time=0.0,
        ))
        out.extend(op.flush())
        streamed = out[0].table
        assert streamed == batch
        assert bool(streamed["returned"][0]) is False

    def test_snapshot_from_ring(self):
        times, power = self._series(9)
        op = StreamingEdgeDetector(8.0, value="power", ring_capacity=128)
        op.process(RecordBatch(
            table=Table({"timestamp": times, "power": power}),
            arrival_time=0.0,
        ))
        # ring keeps the last 128 samples; pick a center inside the tail
        snap = op.snapshot(times[350], before_s=50.0, after_s=50.0)
        assert len(snap) == 11  # (before+after)/dt + 1
        assert np.isfinite(snap).all()


class TestOnlineSpectral:
    @pytest.mark.parametrize("chunks", [5, 32, 999])
    def test_matches_welch_psd(self, batch_series, chunks):
        power = np.asarray(batch_series["sum_inp"], dtype=np.float64)
        op = OnlineSpectral(dt=10.0, nperseg=32, value="sum_inp")
        for s in range(0, len(power), chunks):
            t = Table({"sum_inp": power[s:s + chunks]})
            op.process(RecordBatch(table=t, arrival_time=0.0))
        freqs, psd, n_seg = welch_psd(np.diff(power), dt=10.0, nperseg=32)
        assert n_seg > 1
        assert op.n_segments == n_seg
        assert np.array_equal(op.freqs(), freqs)
        assert np.array_equal(op.periodogram(), psd)

    def test_dominant_mode_before_any_segment(self):
        op = OnlineSpectral(dt=1.0, nperseg=16)
        f, p = op.dominant_mode()
        assert np.isnan(f) and np.isnan(p)

    def test_checkpoint_roundtrip(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=300)
        one = OnlineSpectral(dt=1.0, nperseg=32, value="v")
        one.process(RecordBatch(table=Table({"v": x}), arrival_time=0.0))

        a = OnlineSpectral(dt=1.0, nperseg=32, value="v")
        a.process(RecordBatch(table=Table({"v": x[:143]}), arrival_time=0.0))
        b = OnlineSpectral(dt=1.0, nperseg=32, value="v")
        b.load_state(a.state_dict())
        b.process(RecordBatch(table=Table({"v": x[143:]}), arrival_time=0.0))
        assert b.n_segments == one.n_segments
        assert np.array_equal(b.periodogram(), one.periodogram())

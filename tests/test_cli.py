"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_spec(self, capsys):
        assert main(["spec"]) == 0
        out = capsys.readouterr().out
        assert "4,626" in out
        assert "27,756" in out

    def test_simulate_small(self, capsys):
        rc = main([
            "simulate", "--nodes", "20", "--jobs", "60", "--days", "0.25",
            "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cluster power" in out
        assert "PUE" in out

    def test_export(self, tmp_path, capsys):
        rc = main([
            "export", "--nodes", "20", "--jobs", "60", "--days", "0.25",
            "--seed", "3", "--output", str(tmp_path / "out"),
        ])
        assert rc == 0
        assert (tmp_path / "out" / "allocations.csv").exists()
        assert (tmp_path / "out" / "job_series" / "manifest.json").exists()

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_spec(self, capsys):
        assert main(["spec"]) == 0
        out = capsys.readouterr().out
        assert "4,626" in out
        assert "27,756" in out

    def test_simulate_small(self, capsys):
        rc = main([
            "simulate", "--nodes", "20", "--jobs", "60", "--days", "0.25",
            "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cluster power" in out
        assert "PUE" in out

    def test_export(self, tmp_path, capsys):
        rc = main([
            "export", "--nodes", "20", "--jobs", "60", "--days", "0.25",
            "--seed", "3", "--output", str(tmp_path / "out"),
        ])
        assert rc == 0
        assert (tmp_path / "out" / "allocations.csv").exists()
        assert (tmp_path / "out" / "job_series" / "manifest.json").exists()

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_compact(self, tmp_path, capsys):
        import numpy as np

        from repro.frame.table import Table
        from repro.parallel.partition import PartitionedDataset

        ds = PartitionedDataset.create(tmp_path / "ds", "d")
        for k in range(6):
            t0 = 100.0 * k
            ds.append(
                Table({"timestamp": np.arange(t0, t0 + 100.0),
                       "power": np.full(100, 2000.0)}),
                t0, t0 + 100.0,
            )
        rc = main(["compact", str(tmp_path / "ds"),
                   "--target-rows", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compacted d: 6 -> 2 shards" in out
        assert "column encodings:" in out
        assert PartitionedDataset(tmp_path / "ds").n_partitions == 2


class TestCliStream:
    ARGS = ["--nodes", "12", "--jobs", "40", "--days", "0.02", "--seed", "3",
            "--minutes", "10", "--no-stats"]

    def test_stream_reports_accounting(self, capsys):
        rc = main(["stream", *self.ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stream accounting:" in out
        assert "0 loss-dropped" in out
        assert "streamed cluster series:" in out

    def test_skew_free_stream_has_zero_late(self, capsys):
        rc = main(["stream", *self.ARGS, "--no-skew"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 late-dropped" in out
        assert "skew-free arrival" in out

    def test_stats_report_lists_nodes(self, capsys):
        rc = main(["stream", *self.ARGS[:-1]])  # keep stats
        assert rc == 0
        out = capsys.readouterr().out
        assert "stream nodes" in out
        assert "watermark accounting:" in out
        assert "coarsen" in out and "aggregate" in out

    def test_checkpoint_pause_and_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "stream.ckpt")
        rc = main(["stream", *self.ARGS, "--max-batches", "10",
                   "--checkpoint", ckpt])
        assert rc == 0
        out = capsys.readouterr().out
        assert "checkpoint saved" in out

        rc = main(["stream", *self.ARGS, "--checkpoint", ckpt])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint" in out
        assert "stream accounting:" in out


class TestCliPipelineFlags:
    ARGS = ["--nodes", "16", "--jobs", "50", "--days", "0.25", "--seed", "3"]

    def test_simulate_prints_stage_report(self, capsys):
        rc = main(["simulate", *self.ARGS, "--chunk-seconds", "7200",
                   "--backend", "serial"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cluster_power" in out
        assert "cache: disabled" in out

    def test_no_stats_suppresses_report(self, capsys):
        rc = main(["simulate", *self.ARGS, "--backend", "serial",
                   "--no-stats"])
        assert rc == 0
        assert "cache:" not in capsys.readouterr().out

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", *self.ARGS, "--backend", "dask"])

    def test_export_warm_cache_reruns_from_cache(self, tmp_path, capsys):
        base = ["export", *self.ARGS,
                "--chunk-seconds", "10800", "--backend", "serial",
                "--cache-dir", str(tmp_path / "cache")]
        assert main([*base, "--output", str(tmp_path / "a")]) == 0
        cold = capsys.readouterr().out
        assert "chunk tasks served from cache" in cold

        assert main([*base, "--output", str(tmp_path / "b")]) == 0
        warm = capsys.readouterr().out
        assert "(100%)" in warm
        # both exports produced identical manifests
        a = (tmp_path / "a" / "job_series" / "manifest.json").read_bytes()
        b = (tmp_path / "b" / "job_series" / "manifest.json").read_bytes()
        assert a == b

    def test_chunked_simulate_matches_default(self, capsys):
        assert main(["simulate", *self.ARGS, "--no-stats"]) == 0
        ref = capsys.readouterr().out
        assert main(["simulate", *self.ARGS, "--no-stats",
                     "--chunk-seconds", "3600",
                     "--backend", "serial"]) == 0
        assert capsys.readouterr().out == ref


class TestServeCli:
    @pytest.fixture()
    def served(self, tmp_path):
        """A tiny archived dataset behind a TelemetryServer on a thread."""
        import asyncio
        import threading

        import numpy as np

        from repro.datasets.store import write_partitioned_series
        from repro.frame.table import Table
        from repro.serve import QueryService, ServiceConfig, TelemetryServer

        rng = np.random.default_rng(11)
        n_nodes, n_t = 6, 600
        table = Table({
            "node": np.repeat(np.arange(n_nodes, dtype=np.int64), n_t),
            "timestamp": np.tile(np.arange(n_t, dtype=np.float64), n_nodes),
            "input_power": rng.uniform(400.0, 2000.0, n_nodes * n_t),
        })
        write_partitioned_series(table, tmp_path, "tel", day_s=200.0)

        service = QueryService(str(tmp_path / "tel"),
                               ServiceConfig(workers=2))
        info = {}
        started = threading.Event()

        def runner():
            async def go():
                server = TelemetryServer(service)
                info["host"], info["port"] = await server.start()
                info["loop"] = asyncio.get_running_loop()
                info["quit"] = asyncio.Event()
                started.set()
                await info["quit"].wait()
                await server.stop()

            asyncio.run(go())

        worker = threading.Thread(target=runner)
        worker.start()
        assert started.wait(10)
        yield info["port"]
        info["loop"].call_soon_threadsafe(info["quit"].set)
        worker.join(10)
        service.close()

    def test_query_cold_then_warm(self, served, capsys):
        argv = ["query", "--port", str(served),
                "--t-begin", "0", "--t-end", "400", "--pue", "--head", "2"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache: miss" in cold
        assert "shards:" in cold and "pruned" in cold
        assert "cluster power:" in cold
        assert "PUE: mean" in cold
        assert "timestamp=" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache: hit" in warm

    def test_query_stats(self, served, capsys):
        assert main(["query", "--port", str(served),
                     "--t-begin", "0", "--t-end", "100"]) == 0
        capsys.readouterr()
        assert main(["query", "--port", str(served), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "queries: 1" in out
        assert "tenant cli:" in out

    def test_query_error_exit_code(self, served, capsys):
        rc = main(["query", "--port", str(served),
                   "--metric", "flux_capacitor"])
        assert rc == 1
        assert "error:" in capsys.readouterr().out

    def test_query_invalid_before_send(self, served, capsys):
        rc = main(["query", "--port", str(served), "--width", "-5"])
        assert rc == 1
        assert "error:" in capsys.readouterr().out

    def test_export_telemetry_dataset(self, tmp_path, capsys):
        rc = main([
            "export", "--nodes", "20", "--jobs", "60", "--days", "0.25",
            "--seed", "3", "--output", str(tmp_path / "out"),
            "--telemetry-minutes", "5",
            "--telemetry-shard-seconds", "100",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out and "serve with:" in out

        from repro.parallel.partition import PartitionedDataset

        ds = PartitionedDataset(tmp_path / "out" / "telemetry")
        assert ds.n_rows == 20 * 300
        assert ds.n_partitions >= 3  # 300 s of samples in 100 s shards

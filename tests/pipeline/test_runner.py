"""Runner-level behavior: windowing, config validation, laziness, stats."""

import numpy as np
import pytest

from repro.datasets import SimulationSpec, simulate_twin
from repro.pipeline import Pipeline, PipelineConfig, chunk_windows

DAY = 86_400.0
TINY = SimulationSpec(n_nodes=8, n_jobs=20, horizon_s=0.2 * DAY, seed=11)


class TestChunkWindows:
    def test_covers_horizon_without_gaps(self):
        wins = chunk_windows(10 * DAY, 3 * DAY)
        assert wins[0][0] == 0.0
        assert wins[-1][1] == 10 * DAY
        for (a0, a1), (b0, _) in zip(wins, wins[1:]):
            assert a1 == b0
            assert a1 > a0

    def test_last_window_clipped(self):
        wins = chunk_windows(2.5 * DAY, DAY)
        assert len(wins) == 3
        assert wins[-1] == (2 * DAY, 2.5 * DAY)

    def test_origin_offset(self):
        wins = chunk_windows(DAY, DAY, origin=5 * DAY)
        assert wins == [(5 * DAY, 6 * DAY)]

    def test_empty_horizon(self):
        assert chunk_windows(0.0, DAY) == []
        assert chunk_windows(-1.0, DAY) == []

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            chunk_windows(DAY, 0.0)


class TestConfig:
    def test_defaults(self):
        cfg = PipelineConfig()
        assert cfg.chunk_seconds == DAY
        assert cfg.backend == "threads"
        assert cfg.cache_dir is None

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(ValueError):
            PipelineConfig(chunk_seconds=0.0)
        with pytest.raises(ValueError):
            PipelineConfig(chunk_seconds=-5.0)

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            Pipeline(TINY, PipelineConfig(backend="dask"))


class TestConstruction:
    def test_rejects_wrong_source(self):
        with pytest.raises(TypeError, match="SimulationSpec or TwinData"):
            Pipeline(42)

    def test_twin_is_lazy_from_spec(self):
        pipe = Pipeline(TINY, PipelineConfig(backend="serial"))
        assert pipe._twin is None
        assert pipe.stats.stage("simulate").calls == 0
        twin = pipe.twin
        assert twin.spec == TINY
        assert pipe.stats.stage("simulate").calls == 1
        assert pipe.twin is twin
        assert pipe.stats.stage("simulate").calls == 1

    def test_twin_data_pipeline_helper(self, twin_small):
        pipe = twin_small.pipeline()
        assert isinstance(pipe, Pipeline)
        assert pipe.twin is twin_small
        # no simulate stage when the twin is handed in pre-built
        assert pipe.stats.stage("simulate").calls == 0


class TestStatsIntegration:
    def test_stage_counters_after_run(self):
        twin = simulate_twin(TINY)
        pipe = Pipeline(twin, PipelineConfig(chunk_seconds=0.05 * DAY,
                                             backend="serial"))
        times, power = pipe.cluster_power()
        st = pipe.stats.stage("cluster_power")
        assert st.calls == 4  # 0.2 d horizon / 0.05 d chunks
        assert st.rows_in == len(times)
        assert st.rows_out == len(power)
        assert st.wall_s > 0
        report = pipe.stats.report()
        assert "cluster_power" in report

    def test_warm_rerun_skips_majority_of_stage_work(self, tmp_path):
        # the PR's acceptance criterion: >= 50% of chunk tasks served from
        # cache on a warm re-run (here: all of them)
        cfg = PipelineConfig(chunk_seconds=0.05 * DAY, backend="serial",
                             cache_dir=tmp_path / "c")
        twin = simulate_twin(TINY)
        cold = Pipeline(twin, cfg)
        cold.cluster_power()
        cold.job_series()
        total = cold.stats.total_cache_misses
        assert total >= 2

        warm = Pipeline(twin, cfg)
        wt, wp = warm.cluster_power()
        ws = warm.job_series()
        assert warm.stats.cache_hit_ratio >= 0.5
        assert warm.stats.total_cache_hits == total
        _, cp = Pipeline(twin, PipelineConfig(
            chunk_seconds=0.05 * DAY, backend="serial")).cluster_power()
        assert np.array_equal(wp, cp)
        assert ws.n_rows > 0

    def test_bytes_out_counted_when_caching(self, tmp_path):
        twin = simulate_twin(TINY)
        pipe = Pipeline(twin, PipelineConfig(
            chunk_seconds=0.1 * DAY, backend="serial",
            cache_dir=tmp_path / "c"))
        pipe.cluster_power()
        assert pipe.stats.stage("cluster_power").bytes_out > 0

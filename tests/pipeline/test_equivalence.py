"""Chunked pipeline output must be bit-identical to the single-pass path.

Every assertion here is ``np.array_equal`` (or byte equality for exported
files) — not ``allclose``.  The tentpole's contract is exact equality across
chunk sizes, executor backends, and cache cold/warm runs.
"""

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.aggregate import cluster_power_series
from repro.core.coarsen import coarsen_telemetry
from repro.pipeline import Pipeline, PipelineConfig

DAY = 86_400.0


def assert_tables_equal(got, want):
    assert got.columns == want.columns
    assert got.n_rows == want.n_rows
    for c in want.columns:
        assert got[c].dtype == want[c].dtype, c
        assert np.array_equal(got[c], want[c]), c


def _tree_digest(root: Path) -> dict[str, str]:
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


@pytest.fixture(scope="module")
def telemetry(twin_small):
    """One hour of sampled 1 Hz telemetry (coarsen/aggregate input)."""
    arr = twin_small.builder.build(0.0, 3600.0, 1.0)
    return twin_small.sampler().sample(arr)


@pytest.fixture(scope="module")
def coarse(telemetry):
    return coarsen_telemetry(telemetry, ["input_power"], width=10.0)


class TestClusterPowerEquivalence:
    @pytest.mark.parametrize(
        "chunk_s", [0.1 * DAY, 0.5 * DAY, DAY, 2 * DAY, 10 * DAY]
    )
    def test_chunk_sizes(self, twin_small, single_pass_power, chunk_s):
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=chunk_s,
                                                   backend="serial"))
        times, power = pipe.cluster_power()
        ref_t, ref_p = single_pass_power
        assert np.array_equal(times, ref_t)
        assert np.array_equal(power, ref_p)

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_backends(self, twin_small, single_pass_power, backend):
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=0.25 * DAY, backend=backend, max_workers=2,
        ))
        times, power = pipe.cluster_power()
        assert np.array_equal(times, single_pass_power[0])
        assert np.array_equal(power, single_pass_power[1])

    def test_seeded_random_chunk_sizes(self, twin_small, single_pass_power):
        # property-style sweep: arbitrary chunk widths never change a bit
        rng = np.random.default_rng(2024)
        for chunk_s in rng.uniform(600.0, 2.5 * DAY, size=6):
            pipe = Pipeline(twin_small, PipelineConfig(
                chunk_seconds=float(chunk_s), backend="serial",
            ))
            _, power = pipe.cluster_power()
            assert np.array_equal(power, single_pass_power[1]), chunk_s


class TestJobSeriesEquivalence:
    @pytest.mark.parametrize("chunk_s", [0.1 * DAY, 0.5 * DAY, DAY, 3 * DAY])
    def test_chunk_sizes(self, twin_small, single_pass_series, chunk_s):
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=chunk_s,
                                                   backend="serial"))
        assert_tables_equal(pipe.job_series(), single_pass_series)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_backends(self, twin_small, single_pass_series, backend):
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=0.5 * DAY, backend=backend, max_workers=2,
        ))
        assert_tables_equal(pipe.job_series(), single_pass_series)

    def test_components(self, twin_small):
        ref = twin_small.job_series(components=True)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=0.4 * DAY,
                                                   backend="serial"))
        assert_tables_equal(pipe.job_series(components=True), ref)


class TestCoarsenAggregateEquivalence:
    @pytest.mark.parametrize("chunk_s", [300.0, 1000.0, 3600.0, DAY])
    def test_coarsen_chunk_sizes(self, twin_small, telemetry, chunk_s):
        ref = coarsen_telemetry(telemetry, ["input_power"], width=10.0)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=chunk_s,
                                                   backend="serial"))
        got = pipe.coarsen(telemetry, ["input_power"], width=10.0)
        assert_tables_equal(got, ref)

    def test_coarsen_via_keyword(self, twin_small, telemetry):
        # public entry point routes through the pipeline when one is given
        ref = coarsen_telemetry(telemetry, ["input_power"], width=10.0)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=900.0,
                                                   backend="threads",
                                                   max_workers=2))
        got = coarsen_telemetry(telemetry, ["input_power"], width=10.0,
                                pipeline=pipe)
        assert_tables_equal(got, ref)
        assert pipe.stats.stage("coarsen").calls > 1

    @pytest.mark.parametrize("chunk_s", [600.0, 1800.0, DAY])
    def test_cluster_series_chunk_sizes(self, twin_small, coarse, chunk_s):
        ref = cluster_power_series(coarse)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=chunk_s,
                                                   backend="serial"))
        assert_tables_equal(pipe.cluster_series(coarse), ref)

    def test_cluster_series_via_keyword(self, twin_small, coarse):
        ref = cluster_power_series(coarse)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=900.0,
                                                   backend="serial"))
        got = cluster_power_series(coarse, pipeline=pipe)
        assert_tables_equal(got, ref)


class TestCacheEquivalence:
    def test_cold_then_warm_identical(self, twin_small, single_pass_series,
                                      single_pass_power, tmp_path):
        cfg = PipelineConfig(chunk_seconds=0.5 * DAY, backend="serial",
                             cache_dir=tmp_path / "cache")
        cold = Pipeline(twin_small, cfg)
        assert_tables_equal(cold.job_series(), single_pass_series)
        _, cold_p = cold.cluster_power()
        assert np.array_equal(cold_p, single_pass_power[1])
        assert cold.stats.total_cache_hits == 0
        assert cold.stats.total_cache_misses > 0

        warm = Pipeline(twin_small, cfg)
        assert_tables_equal(warm.job_series(), single_pass_series)
        _, warm_p = warm.cluster_power()
        assert np.array_equal(warm_p, single_pass_power[1])
        assert warm.stats.total_cache_misses == 0
        assert warm.stats.total_cache_hits == cold.stats.total_cache_misses

    def test_warm_across_chunk_size_change_is_a_miss(self, twin_small,
                                                     single_pass_power,
                                                     tmp_path):
        # the chunk layout is part of the address: changing it re-computes
        # (correctly) rather than stitching stale shards
        a = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=0.5 * DAY, backend="serial",
            cache_dir=tmp_path / "cache"))
        a.cluster_power()
        b = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=0.3 * DAY, backend="serial",
            cache_dir=tmp_path / "cache"))
        _, p = b.cluster_power()
        assert np.array_equal(p, single_pass_power[1])
        assert b.stats.total_cache_misses > 0


class TestExportEquivalence:
    def test_export_matches_classic_path(self, twin_small, tmp_path):
        from repro.datasets.store import export_datasets

        ref_root = tmp_path / "ref"
        export_datasets(twin_small, ref_root)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=0.5 * DAY,
                                                   backend="serial"))
        got_root = tmp_path / "got"
        pipe.export(got_root)
        ref = _tree_digest(ref_root)
        got = _tree_digest(got_root)
        assert got == ref

"""Chunked pipeline output must be bit-identical to the single-pass path.

Every assertion here is ``np.array_equal`` (or byte equality for exported
files) — not ``allclose``.  The tentpole's contract is exact equality across
chunk sizes, executor backends, and cache cold/warm runs.
"""

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.aggregate import cluster_power_series
from repro.core.coarsen import coarsen_telemetry
from repro.pipeline import Pipeline, PipelineConfig

DAY = 86_400.0


def assert_tables_equal(got, want):
    assert got.columns == want.columns
    assert got.n_rows == want.n_rows
    for c in want.columns:
        assert got[c].dtype == want[c].dtype, c
        assert np.array_equal(got[c], want[c]), c


def _tree_digest(root: Path) -> dict[str, str]:
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


@pytest.fixture(scope="module")
def telemetry(twin_small):
    """One hour of sampled 1 Hz telemetry (coarsen/aggregate input)."""
    arr = twin_small.builder.build(0.0, 3600.0, 1.0)
    return twin_small.sampler().sample(arr)


@pytest.fixture(scope="module")
def coarse(telemetry):
    return coarsen_telemetry(telemetry, ["input_power"], width=10.0)


class TestClusterPowerEquivalence:
    @pytest.mark.parametrize(
        "chunk_s", [0.1 * DAY, 0.5 * DAY, DAY, 2 * DAY, 10 * DAY]
    )
    def test_chunk_sizes(self, twin_small, single_pass_power, chunk_s):
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=chunk_s,
                                                   backend="serial"))
        times, power = pipe.cluster_power()
        ref_t, ref_p = single_pass_power
        assert np.array_equal(times, ref_t)
        assert np.array_equal(power, ref_p)

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_backends(self, twin_small, single_pass_power, backend):
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=0.25 * DAY, backend=backend, max_workers=2,
        ))
        times, power = pipe.cluster_power()
        assert np.array_equal(times, single_pass_power[0])
        assert np.array_equal(power, single_pass_power[1])

    def test_seeded_random_chunk_sizes(self, twin_small, single_pass_power):
        # property-style sweep: arbitrary chunk widths never change a bit
        rng = np.random.default_rng(2024)
        for chunk_s in rng.uniform(600.0, 2.5 * DAY, size=6):
            pipe = Pipeline(twin_small, PipelineConfig(
                chunk_seconds=float(chunk_s), backend="serial",
            ))
            _, power = pipe.cluster_power()
            assert np.array_equal(power, single_pass_power[1]), chunk_s


class TestJobSeriesEquivalence:
    @pytest.mark.parametrize("chunk_s", [0.1 * DAY, 0.5 * DAY, DAY, 3 * DAY])
    def test_chunk_sizes(self, twin_small, single_pass_series, chunk_s):
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=chunk_s,
                                                   backend="serial"))
        assert_tables_equal(pipe.job_series(), single_pass_series)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_backends(self, twin_small, single_pass_series, backend):
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=0.5 * DAY, backend=backend, max_workers=2,
        ))
        assert_tables_equal(pipe.job_series(), single_pass_series)

    def test_components(self, twin_small):
        ref = twin_small.job_series(components=True)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=0.4 * DAY,
                                                   backend="serial"))
        assert_tables_equal(pipe.job_series(components=True), ref)


class TestCoarsenAggregateEquivalence:
    @pytest.mark.parametrize("chunk_s", [300.0, 1000.0, 3600.0, DAY])
    def test_coarsen_chunk_sizes(self, twin_small, telemetry, chunk_s):
        ref = coarsen_telemetry(telemetry, ["input_power"], width=10.0)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=chunk_s,
                                                   backend="serial"))
        got = pipe.coarsen(telemetry, ["input_power"], width=10.0)
        assert_tables_equal(got, ref)

    def test_coarsen_via_keyword(self, twin_small, telemetry):
        # public entry point routes through the pipeline when one is given
        ref = coarsen_telemetry(telemetry, ["input_power"], width=10.0)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=900.0,
                                                   backend="threads",
                                                   max_workers=2))
        got = coarsen_telemetry(telemetry, ["input_power"], width=10.0,
                                pipeline=pipe)
        assert_tables_equal(got, ref)
        assert pipe.stats.stage("coarsen").calls > 1

    @pytest.mark.parametrize("chunk_s", [600.0, 1800.0, DAY])
    def test_cluster_series_chunk_sizes(self, twin_small, coarse, chunk_s):
        ref = cluster_power_series(coarse)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=chunk_s,
                                                   backend="serial"))
        assert_tables_equal(pipe.cluster_series(coarse), ref)

    def test_cluster_series_via_keyword(self, twin_small, coarse):
        ref = cluster_power_series(coarse)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=900.0,
                                                   backend="serial"))
        got = cluster_power_series(coarse, pipeline=pipe)
        assert_tables_equal(got, ref)

    @pytest.mark.parametrize("presorted", [None, True, False])
    def test_coarsen_presorted_routes(self, twin_small, telemetry, presorted):
        # every kernel route through the chunked path stays bit-identical
        ref = coarsen_telemetry(telemetry, ["input_power"], width=10.0)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=900.0,
                                                   backend="serial"))
        sorted_tel = telemetry.sort(["node", "timestamp"])
        got = pipe.coarsen(sorted_tel, ["input_power"], width=10.0,
                           presorted=presorted)
        assert_tables_equal(got, ref)


class TestFusedEquivalence:
    """telemetry_series: fused one-task-per-shard == unfused == single-pass."""

    @pytest.fixture(scope="class")
    def single_pass(self, telemetry):
        return cluster_power_series(
            coarsen_telemetry(telemetry, ["input_power"], width=10.0)
        )

    @pytest.mark.parametrize("chunk_s", [300.0, 1000.0, 3600.0, DAY])
    def test_fused_chunk_sizes(self, twin_small, telemetry, single_pass,
                               chunk_s):
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=chunk_s, backend="serial", fuse=True))
        got = pipe.telemetry_series(telemetry, ["input_power"])
        assert_tables_equal(got, single_pass)

    def test_fused_matches_unfused(self, twin_small, telemetry):
        fused = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=900.0, backend="serial", fuse=True))
        unfused = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=900.0, backend="serial", fuse=False))
        a = fused.telemetry_series(telemetry, ["input_power"])
        b = unfused.telemetry_series(telemetry, ["input_power"])
        assert_tables_equal(a, b)
        # the fused run must never have materialized the unfused stage names
        assert "coarsen" not in fused.stats.stages
        assert fused.stats.stage("fused").calls > 1
        assert fused.stats.stage("fused/coarsen").wall_s >= 0.0
        assert unfused.stats.stage("coarsen").calls > 1

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_fused_backends(self, twin_small, telemetry, single_pass, backend):
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=900.0, backend=backend, max_workers=2, fuse=True))
        got = pipe.telemetry_series(telemetry, ["input_power"])
        assert_tables_equal(got, single_pass)

    def test_fused_dataset_source(self, twin_small, telemetry, single_pass,
                                  tmp_path):
        from repro.parallel.partition import PartitionedDataset

        ds = PartitionedDataset.create(tmp_path / "tel", "telemetry")
        t = telemetry["timestamp"]
        # last shard catches the 0-5 s collector-delay spillover past 3600
        for lo in np.arange(0.0, float(t.max()) + 1.0, 900.0):
            sub = telemetry.filter((t >= lo) & (t < lo + 900.0))
            ds.append(sub, lo, lo + 900.0)
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=900.0, backend="serial", fuse=True))
        got = pipe.telemetry_series(ds, ["input_power"])
        assert_tables_equal(got, single_pass)
        assert pipe.stats.stage("fused/read").calls == ds.n_partitions

    def test_fused_cache_cold_then_warm(self, twin_small, telemetry,
                                        single_pass, tmp_path):
        cfg = PipelineConfig(chunk_seconds=900.0, backend="serial",
                             fuse=True, cache_dir=tmp_path / "cache")
        cold = Pipeline(twin_small, cfg)
        assert_tables_equal(
            cold.telemetry_series(telemetry, ["input_power"],
                                  cache_token="tel-hour"),
            single_pass,
        )
        assert cold.stats.stage("fused").cache_misses > 0
        warm = Pipeline(twin_small, cfg)
        assert_tables_equal(
            warm.telemetry_series(telemetry, ["input_power"],
                                  cache_token="tel-hour"),
            single_pass,
        )
        assert warm.stats.stage("fused").cache_misses == 0
        assert (warm.stats.stage("fused").cache_hits
                == cold.stats.stage("fused").cache_misses)


class TestCacheEquivalence:
    def test_cold_then_warm_identical(self, twin_small, single_pass_series,
                                      single_pass_power, tmp_path):
        cfg = PipelineConfig(chunk_seconds=0.5 * DAY, backend="serial",
                             cache_dir=tmp_path / "cache")
        cold = Pipeline(twin_small, cfg)
        assert_tables_equal(cold.job_series(), single_pass_series)
        _, cold_p = cold.cluster_power()
        assert np.array_equal(cold_p, single_pass_power[1])
        assert cold.stats.total_cache_hits == 0
        assert cold.stats.total_cache_misses > 0

        warm = Pipeline(twin_small, cfg)
        assert_tables_equal(warm.job_series(), single_pass_series)
        _, warm_p = warm.cluster_power()
        assert np.array_equal(warm_p, single_pass_power[1])
        assert warm.stats.total_cache_misses == 0
        assert warm.stats.total_cache_hits == cold.stats.total_cache_misses

    def test_warm_across_chunk_size_change_is_a_miss(self, twin_small,
                                                     single_pass_power,
                                                     tmp_path):
        # the chunk layout is part of the address: changing it re-computes
        # (correctly) rather than stitching stale shards
        a = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=0.5 * DAY, backend="serial",
            cache_dir=tmp_path / "cache"))
        a.cluster_power()
        b = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=0.3 * DAY, backend="serial",
            cache_dir=tmp_path / "cache"))
        _, p = b.cluster_power()
        assert np.array_equal(p, single_pass_power[1])
        assert b.stats.total_cache_misses > 0


class TestExportEquivalence:
    def test_export_matches_classic_path(self, twin_small, tmp_path):
        from repro.datasets.store import export_datasets

        ref_root = tmp_path / "ref"
        export_datasets(twin_small, ref_root)
        pipe = Pipeline(twin_small, PipelineConfig(chunk_seconds=0.5 * DAY,
                                                   backend="serial"))
        got_root = tmp_path / "got"
        pipe.export(got_root)
        ref = _tree_digest(ref_root)
        got = _tree_digest(got_root)
        assert got == ref


class TestPushdownEquivalence:
    """Projection + predicate pushdown never changes a bit.

    rcs == npz, projected == full, pruned == filtered — across backends,
    fuse on/off, cache cold/warm.
    """

    WIDTH = 10.0
    SHARD_S = 900.0

    @staticmethod
    def build_dataset(telemetry, root, fmt):
        from repro.parallel.partition import PartitionedDataset

        ds = PartitionedDataset.create(root, "telemetry")
        t = telemetry["timestamp"]
        for lo in np.arange(0.0, float(t.max()) + 1.0, 900.0):
            sub = telemetry.filter((t >= lo) & (t < lo + 900.0))
            ds.append(sub, lo, lo + 900.0, fmt=fmt)
        return ds

    @pytest.fixture(scope="class")
    def datasets(self, telemetry, tmp_path_factory):
        root = tmp_path_factory.mktemp("push")
        return {
            fmt: self.build_dataset(telemetry, root / fmt, fmt)
            for fmt in ("rcs", "npz")
        }

    @pytest.fixture(scope="class")
    def single_pass(self, telemetry):
        return cluster_power_series(
            coarsen_telemetry(telemetry, ["input_power"], width=self.WIDTH)
        )

    @pytest.mark.parametrize("fmt", ["rcs", "npz"])
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("fuse", [True, False])
    def test_formats_and_backends(self, twin_small, datasets, single_pass,
                                  fmt, backend, fuse):
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=self.SHARD_S, backend=backend, max_workers=2,
            fuse=fuse))
        got = pipe.telemetry_series(datasets[fmt], ["input_power"])
        assert_tables_equal(got, single_pass)

    @pytest.mark.parametrize("fmt", ["rcs", "npz"])
    @pytest.mark.parametrize("fuse", [True, False])
    def test_time_range_equals_filtered_full_read(self, twin_small, telemetry,
                                                  datasets, fmt, fuse):
        # range aligned to shard and coarsen-window edges: pruned reads must
        # reproduce exactly what filtering the full read would have given
        t0, t1 = self.SHARD_S, 3 * self.SHARD_S
        t = telemetry["timestamp"]
        ref = cluster_power_series(coarsen_telemetry(
            telemetry.filter((t >= t0) & (t < t1)), ["input_power"],
            width=self.WIDTH,
        ))
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=self.SHARD_S, backend="serial", fuse=fuse))
        got = pipe.telemetry_series(datasets[fmt], ["input_power"],
                                    t_begin=t0, t_end=t1)
        assert_tables_equal(got, ref)

    def test_time_range_on_table_source(self, twin_small, telemetry):
        t0, t1 = self.SHARD_S, 3 * self.SHARD_S
        t = telemetry["timestamp"]
        ref = cluster_power_series(coarsen_telemetry(
            telemetry.filter((t >= t0) & (t < t1)), ["input_power"],
            width=self.WIDTH,
        ))
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=self.SHARD_S, backend="serial", fuse=True))
        got = pipe.telemetry_series(telemetry, ["input_power"],
                                    t_begin=t0, t_end=t1)
        assert_tables_equal(got, ref)

    def test_predicate_prunes_shards_before_read(self, twin_small, datasets):
        ds = datasets["rcs"]
        pipe = Pipeline(twin_small, PipelineConfig(
            chunk_seconds=self.SHARD_S, backend="serial", fuse=True))
        pipe.telemetry_series(ds, ["input_power"],
                              t_begin=self.SHARD_S, t_end=3 * self.SHARD_S)
        # zone maps admit the two in-range shards plus the one holding the
        # 0-5 s collector-delay spillover at the range edge — the rest of
        # the dataset is never opened
        assert pipe.stats.stage("fused/read").calls < ds.n_partitions
        assert pipe.stats.stage("fused/read").calls <= 3

    @pytest.mark.parametrize("fmt", ["rcs", "npz"])
    def test_dataset_cache_cold_then_warm(self, twin_small, datasets,
                                          single_pass, tmp_path, fmt):
        cfg = PipelineConfig(chunk_seconds=self.SHARD_S, backend="serial",
                             fuse=True, cache_dir=tmp_path / "cache")
        cold = Pipeline(twin_small, cfg)
        assert_tables_equal(
            cold.telemetry_series(datasets[fmt], ["input_power"],
                                  cache_token=f"tel-{fmt}"),
            single_pass,
        )
        assert cold.stats.stage("fused").cache_misses > 0
        warm = Pipeline(twin_small, cfg)
        assert_tables_equal(
            warm.telemetry_series(datasets[fmt], ["input_power"],
                                  cache_token=f"tel-{fmt}"),
            single_pass,
        )
        assert warm.stats.stage("fused").cache_misses == 0

    def test_time_range_addresses_different_cache_entries(self, twin_small,
                                                          telemetry, datasets,
                                                          tmp_path):
        # a pruned run must never serve (or poison) the full run's artifacts
        cfg = PipelineConfig(chunk_seconds=self.SHARD_S, backend="serial",
                             fuse=True, cache_dir=tmp_path / "cache")
        ds = datasets["rcs"]
        full = Pipeline(twin_small, cfg).telemetry_series(
            ds, ["input_power"], cache_token="tok")
        pruned_pipe = Pipeline(twin_small, cfg)
        pruned = pruned_pipe.telemetry_series(
            ds, ["input_power"], cache_token="tok",
            t_begin=self.SHARD_S, t_end=3 * self.SHARD_S)
        assert pruned_pipe.stats.stage("fused").cache_hits == 0
        t0, t1 = self.SHARD_S, 3 * self.SHARD_S
        t = telemetry["timestamp"]
        ref = cluster_power_series(coarsen_telemetry(
            telemetry.filter((t >= t0) & (t < t1)), ["input_power"],
            width=self.WIDTH,
        ))
        assert_tables_equal(pruned, ref)
        ts = full["timestamp"]
        assert_tables_equal(
            full.filter((ts >= t0) & (ts < t1)), ref
        )

    def test_coarsen_accepts_dataset(self, datasets, telemetry):
        ref = coarsen_telemetry(telemetry, ["input_power"], width=self.WIDTH)
        got = coarsen_telemetry(datasets["rcs"], ["input_power"],
                                width=self.WIDTH)
        assert_tables_equal(got.sort(["node", "timestamp"]),
                            ref.sort(["node", "timestamp"]))

    def test_aggregate_accepts_dataset(self, coarse, tmp_path):
        from repro.datasets.store import write_partitioned_series

        ds = write_partitioned_series(
            coarse.sort("timestamp"), tmp_path, "coarse", day_s=900.0)
        ref = cluster_power_series(coarse)
        assert_tables_equal(cluster_power_series(ds), ref)

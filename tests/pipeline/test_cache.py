"""Unit tests for the content-addressed artifact cache."""

import numpy as np
import pytest

from repro.datasets import SimulationSpec
from repro.frame.table import Table
from repro.pipeline import ArtifactCache, cache_key


def _table():
    return Table({
        "t": np.arange(5, dtype=np.float64),
        "v": np.array([1.5, -2.0, 0.0, 3.25, 7.125]),
        "n": np.arange(5, dtype=np.int64),
    })


class TestCacheKey:
    def test_deterministic(self):
        spec = SimulationSpec(n_nodes=8, seed=3)
        assert cache_key(spec, stage="x", dt=10.0) == cache_key(
            SimulationSpec(n_nodes=8, seed=3), stage="x", dt=10.0
        )

    def test_sensitive_to_every_part(self):
        spec = SimulationSpec(n_nodes=8, seed=3)
        base = cache_key(spec, stage="x", dt=10.0)
        assert cache_key(SimulationSpec(n_nodes=9, seed=3), stage="x", dt=10.0) != base
        assert cache_key(spec, stage="y", dt=10.0) != base
        assert cache_key(spec, stage="x", dt=60.0) != base

    def test_float_int_distinct(self):
        # 10 and 10.0 address different artifacts: stage params are typed
        assert cache_key(dt=10) != cache_key(dt=10.0)

    def test_is_hex_sha256(self):
        k = cache_key("anything")
        assert len(k) == 64
        assert set(k) <= set("0123456789abcdef")

    def test_rejects_unhashable_payload(self):
        with pytest.raises(TypeError):
            cache_key(object())


class TestArtifactCache:
    def test_roundtrip_bit_identical(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        t = _table()
        key = cache_key("roundtrip")
        assert cache.get(key) is None
        n = cache.put(key, t)
        assert n > 0
        got = cache.get(key)
        assert got is not None
        assert got.columns == t.columns
        for c in t.columns:
            assert got[c].dtype == t[c].dtype
            assert np.array_equal(got[c], t[c])

    def test_contains_and_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache_key("layout")
        assert key not in cache
        cache.put(key, _table())
        assert key in cache
        assert cache.path(key).parent.name == key[:2]

    def test_empty_table_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        empty = Table({"a": np.empty(0, np.int64), "b": np.empty(0, np.float64)})
        key = cache_key("empty")
        cache.put(key, empty)
        got = cache.get(key)
        assert got.n_rows == 0
        assert got["a"].dtype == np.int64

    def test_malformed_key_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ValueError):
            cache.path("../escape")
        with pytest.raises(ValueError):
            cache.path("short")

    def test_torn_entry_reads_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache_key("torn")
        p = cache.path(key)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_bytes(b"not an npz")
        assert cache.get(key) is None

    def test_clear_and_counters(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(3):
            cache.put(cache_key("entry", i=i), _table())
        assert cache.n_entries == 3
        assert cache.n_bytes > 0
        assert cache.clear() == 3
        assert cache.n_entries == 0

    def test_no_temp_files_left(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(cache_key("tmpcheck"), _table())
        leftovers = [p for p in tmp_path.rglob("*") if "tmp" in p.name]
        assert leftovers == []

"""Unit tests for the content-addressed artifact cache."""

import numpy as np
import pytest

from repro.datasets import SimulationSpec
from repro.frame.table import Table
from repro.pipeline import ArtifactCache, atomic_put_npz, cache_key
from repro.pipeline.cache import load_npz


def _table():
    return Table({
        "t": np.arange(5, dtype=np.float64),
        "v": np.array([1.5, -2.0, 0.0, 3.25, 7.125]),
        "n": np.arange(5, dtype=np.int64),
    })


class TestCacheKey:
    def test_deterministic(self):
        spec = SimulationSpec(n_nodes=8, seed=3)
        assert cache_key(spec, stage="x", dt=10.0) == cache_key(
            SimulationSpec(n_nodes=8, seed=3), stage="x", dt=10.0
        )

    def test_sensitive_to_every_part(self):
        spec = SimulationSpec(n_nodes=8, seed=3)
        base = cache_key(spec, stage="x", dt=10.0)
        assert cache_key(SimulationSpec(n_nodes=9, seed=3), stage="x", dt=10.0) != base
        assert cache_key(spec, stage="y", dt=10.0) != base
        assert cache_key(spec, stage="x", dt=60.0) != base

    def test_float_int_distinct(self):
        # 10 and 10.0 address different artifacts: stage params are typed
        assert cache_key(dt=10) != cache_key(dt=10.0)

    def test_is_hex_sha256(self):
        k = cache_key("anything")
        assert len(k) == 64
        assert set(k) <= set("0123456789abcdef")

    def test_rejects_unhashable_payload(self):
        with pytest.raises(TypeError):
            cache_key(object())


class TestArtifactCache:
    def test_roundtrip_bit_identical(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        t = _table()
        key = cache_key("roundtrip")
        assert cache.get(key) is None
        n = cache.put(key, t)
        assert n > 0
        got = cache.get(key)
        assert got is not None
        assert got.columns == t.columns
        for c in t.columns:
            assert got[c].dtype == t[c].dtype
            assert np.array_equal(got[c], t[c])

    def test_contains_and_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache_key("layout")
        assert key not in cache
        cache.put(key, _table())
        assert key in cache
        assert cache.path(key).parent.name == key[:2]

    def test_empty_table_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        empty = Table({"a": np.empty(0, np.int64), "b": np.empty(0, np.float64)})
        key = cache_key("empty")
        cache.put(key, empty)
        got = cache.get(key)
        assert got.n_rows == 0
        assert got["a"].dtype == np.int64

    def test_malformed_key_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ValueError):
            cache.path("../escape")
        with pytest.raises(ValueError):
            cache.path("short")

    def test_torn_entry_reads_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache_key("torn")
        p = cache.path(key)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_bytes(b"not an npz")
        assert cache.get(key) is None

    def test_clear_and_counters(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(3):
            cache.put(cache_key("entry", i=i), _table())
        assert cache.n_entries == 3
        assert cache.n_bytes > 0
        assert cache.clear() == 3
        assert cache.n_entries == 0

    def test_no_temp_files_left(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(cache_key("tmpcheck"), _table())
        leftovers = [p for p in tmp_path.rglob("*") if "tmp" in p.name]
        assert leftovers == []


class TestAtomicPut:
    def test_round_trip_and_no_leftovers(self, tmp_path):
        t = _table()
        n = atomic_put_npz(t, tmp_path / "out.npz")
        assert n == (tmp_path / "out.npz").stat().st_size
        assert load_npz(tmp_path / "out.npz") == t
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.npz"]

    def test_replaces_existing_entry(self, tmp_path):
        path = tmp_path / "out.npz"
        atomic_put_npz(_table(), path)
        bigger = Table({"t": np.arange(50, dtype=np.float64)})
        atomic_put_npz(bigger, path)
        assert load_npz(path) == bigger


class TestArtifactCacheEviction:
    def _put(self, cache, label, mtime):
        key = cache_key("evict", label=label)
        cache.put(key, _table())
        import os

        os.utime(cache.path(key), (mtime, mtime))
        return key

    def test_unbounded_by_default(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(5):
            cache.put(cache_key("nolimit", i=i), _table())
        assert cache.n_entries == 5
        assert cache.evictions == 0

    def test_oldest_evicted_first(self, tmp_path):
        probe = ArtifactCache(tmp_path / "probe")
        probe.put(cache_key("probe"), _table())
        one = probe.n_bytes

        cache = ArtifactCache(tmp_path / "c", max_bytes=int(2.5 * one))
        old = self._put(cache, "old", 1_000.0)
        mid = self._put(cache, "mid", 2_000.0)
        new = cache_key("evict", label="new")
        cache.put(new, _table())  # cap exceeded: "old" must go
        assert cache.evictions == 1
        assert old not in cache
        assert mid in cache and new in cache

    def test_hit_refreshes_recency(self, tmp_path):
        probe = ArtifactCache(tmp_path / "probe")
        probe.put(cache_key("probe"), _table())
        one = probe.n_bytes

        cache = ArtifactCache(tmp_path / "c", max_bytes=int(2.5 * one))
        old = self._put(cache, "old", 1_000.0)
        mid = self._put(cache, "mid", 2_000.0)
        assert cache.get(old) is not None  # now most recent
        cache.put(cache_key("evict", label="new"), _table())
        assert old in cache
        assert mid not in cache

    def test_own_put_never_evicted(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=1)  # below any entry size
        key = cache_key("oversized")
        cache.put(key, _table())
        assert key in cache
        # the next put displaces it (it is then the stalest entry)
        key2 = cache_key("oversized", n=2)
        cache.put(key2, _table())
        assert key2 in cache
        assert key not in cache
        assert cache.evictions == 1

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path, max_bytes=0)

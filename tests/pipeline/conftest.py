"""Shared small twin for pipeline tests (session-scoped: simulation is the
expensive part, every test only re-derives datasets from it)."""

import pytest

from repro.datasets import SimulationSpec, simulate_twin

SPEC = SimulationSpec(n_nodes=12, n_jobs=60, horizon_s=1.5 * 86_400.0, seed=7)


@pytest.fixture(scope="session")
def twin_small():
    return simulate_twin(SPEC)


@pytest.fixture(scope="session")
def single_pass_series(twin_small):
    return twin_small.job_series()


@pytest.fixture(scope="session")
def single_pass_power(twin_small):
    return twin_small.cluster_power()

"""Unit tests for PipelineStats counters and reporting."""

from concurrent.futures import ThreadPoolExecutor

from repro.pipeline import PipelineStats


class TestPipelineStats:
    def test_record_accumulates(self):
        s = PipelineStats()
        s.record("a", wall_s=1.0, rows_in=10, rows_out=5, bytes_out=100)
        s.record("a", wall_s=0.5, rows_in=2, cache_hits=3, cache_misses=1)
        st = s.stage("a")
        assert st.calls == 2
        assert st.wall_s == 1.5
        assert st.rows_in == 12
        assert st.rows_out == 5
        assert st.bytes_out == 100
        assert st.cache_hits == 3
        assert st.cache_misses == 1

    def test_hit_ratios(self):
        s = PipelineStats()
        assert s.cache_hit_ratio == 0.0
        s.record("a", cache_hits=3, cache_misses=1)
        s.record("b", cache_hits=1, cache_misses=3)
        assert s.stage("a").cache_hit_ratio == 0.75
        assert s.cache_hit_ratio == 0.5
        assert s.total_cache_hits == 4
        assert s.total_cache_misses == 4

    def test_report_lists_stages_and_rollup(self):
        s = PipelineStats()
        s.record("coarsen", wall_s=0.25, rows_in=100, rows_out=10,
                 cache_hits=2, cache_misses=2)
        text = s.report()
        assert "coarsen" in text
        assert "2/4" in text
        assert "50%" in text

    def test_report_without_cache(self):
        s = PipelineStats()
        s.record("x", wall_s=0.1)
        assert "cache: disabled" in s.report()

    def test_merge(self):
        a, b = PipelineStats(), PipelineStats()
        a.record("s", wall_s=1.0, cache_hits=1)
        b.record("s", wall_s=2.0, cache_misses=1)
        b.record("t", rows_out=7)
        a.merge(b)
        assert a.stage("s").wall_s == 3.0
        assert a.stage("s").cache_hits == 1
        assert a.stage("s").cache_misses == 1
        assert a.stage("t").rows_out == 7

    def test_thread_safety(self):
        s = PipelineStats()
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(
                lambda _: s.record("hot", calls=1, rows_out=1), range(400)
            ))
        assert s.stage("hot").calls == 400
        assert s.stage("hot").rows_out == 400

"""Differential equivalence: compressed vs raw vs npz stores, all routes.

One hour of twin telemetry is written as three byte-different stores —
compressed ``.rcs`` (per-column codecs), raw ``.rcs`` (the PR 4 layout),
and ``.npz`` — and every pipeline route over them must produce results
bit-identical to each other and to the single-pass reference: batch
(fused and unfused), threads and processes backends, projection +
time-range pushdown, the streaming engine, and warm artifact caches
(whose keys are proven disjoint across storage configs and
``CACHE_FORMAT_VERSION`` bumps, so no stale artifact can ever leak
between configurations).
"""

import os
from unittest.mock import patch

import numpy as np
import pytest

from repro.core.aggregate import cluster_power_series
from repro.core.coarsen import coarsen_telemetry
from repro.pipeline import Pipeline, PipelineConfig

STORES = ("compressed", "raw", "npz")


def assert_tables_equal(got, want):
    assert got.columns == want.columns
    assert got.n_rows == want.n_rows
    for c in want.columns:
        assert got[c].dtype == want[c].dtype, c
        assert np.array_equal(got[c], want[c]), c


@pytest.fixture(scope="module")
def telemetry(twin_small):
    arr = twin_small.builder.build(0.0, 3600.0, 1.0)
    return twin_small.sampler().sample(arr)


@pytest.fixture(scope="module")
def single_pass(telemetry):
    return cluster_power_series(
        coarsen_telemetry(telemetry, ["input_power"], width=10.0)
    )


@pytest.fixture(scope="module")
def stores(telemetry, tmp_path_factory):
    """The same telemetry as three byte-different on-disk stores."""
    from repro.parallel.partition import PartitionedDataset

    root = tmp_path_factory.mktemp("stores")
    out = {}
    t = telemetry["timestamp"]
    for kind in STORES:
        fmt = "npz" if kind == "npz" else "rcs"
        mode = "off" if kind == "raw" else "auto"
        ds = PartitionedDataset.create(root / kind, f"telemetry-{kind}")
        with patch.dict(os.environ, {"REPRO_RCS_COMPRESSION": mode}):
            for lo in np.arange(0.0, float(t.max()) + 1.0, 900.0):
                sub = telemetry.filter((t >= lo) & (t < lo + 900.0))
                ds.append(sub, lo, lo + 900.0, fmt=fmt)
        out[kind] = ds
    # the stores must actually differ on disk for this test to mean much
    assert out["compressed"].n_bytes < out["raw"].n_bytes
    enc = out["compressed"].encoding_summary()
    assert sum(n for c, n in enc.items() if c not in ("raw", "npz")) > 0
    assert all(p.enc is None for p in out["raw"].partitions)
    return out


def series_over(store, twin, cache_token=None, **cfg):
    defaults = dict(chunk_seconds=900.0, backend="serial", fuse=True)
    defaults.update(cfg)
    pipe = Pipeline(twin, PipelineConfig(**defaults))
    got = pipe.telemetry_series(store, ["input_power"],
                                cache_token=cache_token)
    return got, pipe


class TestBatchRoutes:
    @pytest.mark.parametrize("kind", STORES)
    def test_fused_serial(self, stores, twin_small, single_pass, kind):
        got, _ = series_over(stores[kind], twin_small)
        assert_tables_equal(got, single_pass)

    @pytest.mark.parametrize("kind", STORES)
    def test_unfused(self, stores, twin_small, single_pass, kind):
        got, _ = series_over(stores[kind], twin_small, fuse=False)
        assert_tables_equal(got, single_pass)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_compressed_store_backends(self, stores, twin_small,
                                       single_pass, backend):
        # processes: decoded columns cannot ship as mmap refs — the shm
        # copy fallback must still be bit-identical
        got, _ = series_over(stores["compressed"], twin_small,
                             backend=backend, max_workers=2)
        assert_tables_equal(got, single_pass)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_raw_store_backends(self, stores, twin_small, single_pass,
                                backend):
        got, _ = series_over(stores["raw"], twin_small,
                             backend=backend, max_workers=2)
        assert_tables_equal(got, single_pass)


class TestPushdownRoutes:
    def test_time_range_pushdown_identical_across_stores(self, stores,
                                                         twin_small):
        results = {}
        for kind in STORES:
            pipe = Pipeline(twin_small, PipelineConfig(
                chunk_seconds=900.0, backend="serial", fuse=True))
            results[kind] = pipe.telemetry_series(
                stores[kind], ["input_power"],
                t_begin=1000.0, t_end=2600.0,
            )
        assert results["compressed"].n_rows > 0
        assert_tables_equal(results["compressed"], results["raw"])
        assert_tables_equal(results["compressed"], results["npz"])

    def test_zone_pruned_scan_identical(self, stores):
        picks = {
            kind: stores[kind].select_time(900.0, 1800.0)
            for kind in STORES
        }
        assert picks["compressed"] == picks["raw"] == picks["npz"]
        for kind in STORES:
            assert 0 < len(picks[kind]) < stores[kind].n_partitions

    def test_projected_reads_identical(self, stores):
        for i in range(stores["raw"].n_partitions):
            a = stores["compressed"].read(i, ["timestamp", "input_power"])
            b = stores["raw"].read(i, ["timestamp", "input_power"])
            c = stores["npz"].read(i, ["timestamp", "input_power"])
            assert_tables_equal(a, b)
            assert_tables_equal(a, c)


class TestStreamingRoute:
    def test_streamed_aggregate_identical(self, stores, twin_small):
        results = {}
        for kind in STORES:
            pipe = Pipeline(twin_small, PipelineConfig(backend="serial"))
            graph = pipe.stream_graph(stores[kind], skew=False, seed=3,
                                      spectral=False)
            graph.run()
            agg = graph.result("aggregate")
            assert agg is not None and agg.n_rows > 0
            results[kind] = agg
        assert_tables_equal(results["compressed"], results["raw"])
        assert_tables_equal(results["compressed"], results["npz"])


class TestCacheIsolation:
    def test_warm_cache_per_store_config(self, stores, twin_small,
                                         single_pass, tmp_path):
        cache_dir = tmp_path / "cache"
        cfg = dict(chunk_seconds=900.0, backend="serial", fuse=True,
                   cache_dir=cache_dir, cache_token="tel-hour")
        # pin both storage configs: the ambient env (e.g. CI's
        # compression-off job) must not collapse the two key spaces
        with patch.dict(os.environ, {"REPRO_RCS_COMPRESSION": "auto"}):
            cold, pipe_cold = series_over(stores["compressed"], twin_small,
                                          **cfg)
            assert pipe_cold.stats.stage("fused").cache_misses > 0
            warm, pipe_warm = series_over(stores["compressed"], twin_small,
                                          **cfg)
        assert pipe_warm.stats.stage("fused").cache_misses == 0
        assert_tables_equal(warm, single_pass)
        # raw-layout run shares the directory but not the artifacts:
        # the storage config is folded into every key
        with patch.dict(os.environ, {"REPRO_RCS_COMPRESSION": "off"}):
            raw, pipe_raw = series_over(stores["raw"], twin_small, **cfg)
        assert pipe_raw.stats.stage("fused").cache_hits == 0
        assert pipe_raw.stats.stage("fused").cache_misses > 0
        assert_tables_equal(raw, single_pass)

    def test_format_version_bump_invalidates(self, stores, twin_small,
                                             single_pass, tmp_path):
        import repro.pipeline.cache as cache_mod

        cfg = dict(chunk_seconds=900.0, backend="serial", fuse=True,
                   cache_dir=tmp_path / "cache", cache_token="tel-hour")
        with patch.object(cache_mod, "CACHE_FORMAT_VERSION",
                          cache_mod.CACHE_FORMAT_VERSION - 1):
            old, _ = series_over(stores["compressed"], twin_small, **cfg)
        assert_tables_equal(old, single_pass)
        # same store, bumped version: every artifact re-addresses (no
        # stale pre-bump artifact is ever served)...
        bumped, pipe = series_over(stores["compressed"], twin_small, **cfg)
        assert pipe.stats.stage("fused").cache_hits == 0
        assert pipe.stats.stage("fused").cache_misses > 0
        # ...and the output is bit-identical anyway
        assert_tables_equal(bumped, old)

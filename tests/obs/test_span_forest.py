"""Property tests: any span nesting reconstructs a well-formed forest.

Satellite of the obs tentpole — whatever shape of nesting the code
produces (including spans created inside ``Executor`` pool workers and
re-parented on merge), the recorded trace must rebuild into a forest
where every child lies within its parent's interval, no span is
orphaned, and ids are deterministic under both ``fork`` and ``spawn``
start methods.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.obs import trace
from repro.obs.export import build_forest, validate_spans
from repro.parallel.executor import Executor

# a nesting shape: (name index, [child shapes]); small name alphabet so
# sibling name collisions (seq disambiguation) are exercised constantly
shapes = st.recursive(
    st.tuples(st.integers(min_value=0, max_value=2), st.just([])),
    lambda children: st.tuples(
        st.integers(min_value=0, max_value=2),
        st.lists(children, max_size=3),
    ),
    max_leaves=12,
)

NAMES = ("alpha", "beta", "gamma")


def _open(shape, counts):
    name_i, children = shape
    counts[0] += 1
    with trace.span(NAMES[name_i]):
        for child in children:
            _open(child, counts)


class TestInProcessForest:
    @given(st.lists(shapes, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_any_nesting_rebuilds_well_formed(self, forest_shapes):
        trace.enable(None)
        counts = [0]
        with trace.capture() as records:
            for shape in forest_shapes:
                _open(shape, counts)
        trace.disable()

        assert len(records) == counts[0]
        forest = validate_spans(records)  # raises on any malformation
        assert len(forest) == len(forest_shapes)

        def tally(nodes):
            return len(nodes) + sum(tally(n.children) for n in nodes)

        assert tally(forest) == counts[0]

    @given(st.lists(shapes, min_size=1, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_subtree_ids_deterministic_under_fixed_parent(self, forest_shapes):
        ctx = trace.SpanContext("trace-x", "parent-x")

        def run():
            trace.enable(None)
            with trace.capture() as records:
                with trace.span("run", _parent=ctx, _seq=0):
                    for shape in forest_shapes:
                        _open(shape, [0])
            trace.disable()
            return [(r["name"], r["span"], r["parent"]) for r in records]

        first = run()
        assert first == run()
        ids = [s for _, s, _ in first]
        assert len(set(ids)) == len(ids)


def _with_synthetic_root(records):
    """The executor tests hang the tree off a synthetic SpanContext; add
    the matching root record so forest validation can run (in real use
    the parent's own process writes that record to the shared file)."""
    t0 = min(r["ts"] for r in records)
    t1 = max(r["ts"] + r["dur"] for r in records)
    return records + [{
        "name": "root", "trace": "trace-exec", "span": "root-exec",
        "parent": None, "ts": t0 - 1.0, "dur": (t1 - t0) + 2.0,
        "pid": 0, "tid": 0, "attrs": {},
    }]


def _traced_work(depth: int) -> int:
    """Module-level worker (picklable under spawn) that nests spans."""
    with trace.span("work.outer", depth=depth):
        for _ in range(depth):
            with trace.span("work.inner"):
                pass
    return depth * 10


def _run_executor(backend: str, mp_context: str | None, depths: list[int]):
    ctx = trace.SpanContext("trace-exec", "root-exec")
    trace.enable(None)
    with trace.capture() as records:
        with trace.span("run", _parent=ctx, _seq=0):
            ex = Executor(backend=backend, max_workers=2,
                          mp_context=mp_context)
            out = ex.map(_traced_work, depths, label="prop")
    trace.disable()
    assert out == [d * 10 for d in depths]
    return records


class TestCrossProcessForest:
    @given(st.lists(st.integers(min_value=0, max_value=3),
                    min_size=2, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_worker_spans_rebuild_and_match_serial(self, depths):
        # serial execution is the oracle: the pool backends must produce
        # the exact same span ids and parent links, however workers
        # interleave (only timings may differ)
        def shape(records):
            return sorted((r["name"], r["span"], r["parent"])
                          for r in records)

        serial = _run_executor("serial", None, depths)
        threads = _run_executor("threads", None, depths)
        assert shape(threads) == shape(serial)
        forest = validate_spans(_with_synthetic_root(threads))
        assert len(forest) == 1  # everything under the synthetic root

    def test_fork_and_spawn_identical_ids(self):
        depths = [2, 0, 3, 1]

        def shape(records):
            return sorted((r["name"], r["span"], r["parent"])
                          for r in records)

        serial = shape(_run_executor("serial", None, depths))
        fork = shape(_run_executor("processes", "fork", depths))
        spawn = shape(_run_executor("processes", "spawn", depths))
        assert fork == spawn == serial

    def test_process_forest_children_within_parent_intervals(self):
        records = _run_executor("processes", "fork", [1, 2, 3])
        forest = validate_spans(_with_synthetic_root(records))
        (synthetic,) = forest
        (root,) = synthetic.children
        (emap,) = root.children
        assert emap.name == "executor.map"
        assert [c.name for c in emap.children] == ["executor.task"] * 3
        for task in emap.children:
            assert [c.name for c in task.children] == ["work.outer"]

"""Unit tests for the repro.obs metrics registry."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (REGISTRY, Counter, Gauge, Histogram,
                               MetricsRegistry, snapshot_delta)


def test_counter_inc_and_merge():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    c.merge(3)
    assert c.value == 8


def test_gauge_set_and_merge_keeps_max():
    g = Gauge()
    g.set(7)
    g.set(3)
    assert g.value == 3
    g.merge(5)
    assert g.value == 5
    g.merge(2)
    assert g.value == 5


def test_histogram_quantiles_without_samples():
    h = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
    for v in (0.5, 1.5, 1.5, 3.0, 6.0, 20.0):
        h.observe(v)
    assert h.count == 6
    assert h.sum == pytest.approx(32.5)
    assert h.min == 0.5
    assert h.max == 20.0
    assert h.mean == pytest.approx(32.5 / 6)
    # quantiles interpolate inside buckets; exact at the ends
    assert 0.0 <= h.quantile(0.0) <= 1.0
    assert 1.0 <= h.quantile(0.5) <= 2.0
    assert h.quantile(1.0) == 20.0
    assert h.quantile(0.99) <= 20.0


def test_histogram_empty():
    h = Histogram()
    assert h.quantile(0.5) == 0.0
    assert h.mean == 0.0


def test_histogram_merge_requires_matching_buckets():
    a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(2.0,))
    b.observe(0.5)
    with pytest.raises(ValueError):
        a.merge(b.state())


def test_registry_get_or_create_is_stable():
    r = MetricsRegistry()
    assert r.counter("x") is r.counter("x")
    assert r.counter("x", a=1) is r.counter("x", a=1)
    assert r.counter("x", a=1) is not r.counter("x", a=2)
    # label order does not matter
    assert r.counter("y", a=1, b=2) is r.counter("y", b=2, a=1)


def test_registry_snapshot_merge_roundtrip():
    r = MetricsRegistry()
    r.counter("queries").inc(5)
    r.gauge("depth", node="a").set(3)
    h = r.histogram("lat")
    h.observe(0.01)
    h.observe(0.2)

    other = MetricsRegistry()
    other.merge(r.snapshot())
    other.merge(r.snapshot())
    assert other.counter("queries").value == 10
    assert other.gauge("depth", node="a").value == 3
    assert other.histogram("lat").count == 4

    # rendered keys are deterministic and sorted
    snap = r.snapshot()
    assert list(snap) == sorted(snap)
    assert "depth{node=a}" in snap


def test_registry_merge_kind_mismatch_raises():
    r = MetricsRegistry()
    r.counter("m").inc()
    other = MetricsRegistry()
    other.gauge("m").set(1)
    with pytest.raises(ValueError):
        other.merge(r.snapshot())


def test_snapshot_delta_counters_and_histograms():
    r = MetricsRegistry()
    r.counter("a").inc(3)
    h = r.histogram("lat", bounds=(1.0, 2.0))
    h.observe(0.5)
    before = r.snapshot()

    r.counter("a").inc(2)
    r.counter("b").inc(7)
    r.gauge("g").set(4)
    h.observe(1.5)
    after = r.snapshot()

    delta = snapshot_delta(before, after)
    assert delta["a"]["state"] == 2
    assert delta["b"]["state"] == 7
    assert delta["g"]["state"] == 4
    assert delta["lat"]["state"]["count"] == 1
    assert delta["lat"]["state"]["buckets"] == [0, 1, 0]

    # merging the delta onto a copy of `before` reproduces `after`'s
    # counts (histogram min/max deliberately cover a superset)
    base = MetricsRegistry()
    base.merge(before)
    base.merge(delta)
    assert base.counter("a").value == 5
    assert base.counter("b").value == 7
    assert base.histogram("lat", bounds=(1.0, 2.0)).count == 2


def test_snapshot_delta_unchanged_metrics_are_dropped():
    r = MetricsRegistry()
    r.counter("a").inc(3)
    snap = r.snapshot()
    assert snapshot_delta(snap, snap) == {}


def test_global_registry_exists():
    c = REGISTRY.counter("obs.test.probe")
    c.inc()
    assert REGISTRY.counter("obs.test.probe").value >= 1

"""Hammer test: `ServiceStats.snapshot()` is atomic under concurrency.

Before the obs re-base, counters were mutated without a lock from
worker-pool callbacks; a snapshot taken mid-update could observe
``queries`` incremented but not yet ``ok`` (or half a fragment batch).
Now every record and every snapshot takes the stats lock, so the
invariants below hold in *every* snapshot, not just the final one.
"""

from __future__ import annotations

import threading

from repro.serve.stats import ServiceStats

RECORDS_PER_THREAD = 300
THREADS = 8


def _hammer(stats: ServiceStats, start: threading.Event) -> None:
    start.wait()
    for i in range(RECORDS_PER_THREAD):
        kind = i % 5
        if kind == 0:
            stats.record_rejected()
        elif kind == 1:
            stats.record_error()
        elif kind == 2:
            stats.record_ok(cache="hit", rows=10, elapsed_s=0.001)
        else:
            stats.record_ok(
                cache="miss", rows=25, elapsed_s=0.002,
                shards_scanned=4, shards_pruned=1, executed_s=0.001,
                fragments={"hits": 1, "shared": 1, "misses": 2,
                           "full": 2, "aligned": 1, "partial": 1})


def test_snapshot_consistent_under_concurrent_records():
    stats = ServiceStats()
    start = threading.Event()
    threads = [threading.Thread(target=_hammer, args=(stats, start))
               for _ in range(THREADS)]
    for t in threads:
        t.start()
    start.set()

    snapshots = []
    while any(t.is_alive() for t in threads):
        snapshots.append(stats.snapshot())
    for t in threads:
        t.join()
    snapshots.append(stats.snapshot())

    for snap in snapshots:
        # a torn read would break the ledger: every query is exactly one
        # of ok / rejected / error
        assert snap["queries"] == (
            snap["ok"] + snap["rejected"] + snap["errors"]), snap
        # fragment counters land as one batch with the executed query
        assert snap["frag_hits"] == snap["frag_shared"], snap
        assert snap["frag_misses"] == 2 * snap["frag_hits"], snap
        assert snap["tasks_full"] == 2 * snap["tasks_aligned"], snap
        assert snap["tasks_aligned"] == snap["tasks_partial"], snap
        # executed queries carry their shard accounting in the same batch
        assert snap["shards_scanned"] == 4 * snap["executed"], snap
        assert snap["shards_pruned"] == snap["executed"], snap

    total = THREADS * RECORDS_PER_THREAD
    final = snapshots[-1]
    assert final["queries"] == total
    assert final["rejected"] == total // 5
    assert final["errors"] == total // 5
    assert final["cache_hits"] == total // 5
    assert final["executed"] == 2 * (total // 5)


def test_report_renders_under_concurrent_records():
    stats = ServiceStats()
    start = threading.Event()
    threads = [threading.Thread(target=_hammer, args=(stats, start))
               for _ in range(4)]
    for t in threads:
        t.start()
    start.set()
    for _ in range(20):
        text = stats.report()
        assert text.startswith("query service")
    for t in threads:
        t.join()

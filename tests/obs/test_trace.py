"""Unit tests for repro.obs.trace and repro.obs.export."""

from __future__ import annotations

import json

import pytest

from repro.obs import trace
from repro.obs.export import (TraceError, build_forest, flame_summary,
                              load_trace, to_chrome, validate_spans)


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    trace.disable()


def test_disabled_span_is_noop_and_counted():
    before = trace.disabled_span_calls()
    with trace.span("anything", a=1) as sp:
        sp.set(b=2)
        assert sp.context is None
    assert trace.disabled_span_calls() == before + 1
    assert trace.current_context() is None


def test_nesting_and_record_fields(tmp_path):
    path = tmp_path / "t.jsonl"
    trace.enable(path)
    with trace.span("root", kind="test") as root:
        with trace.span("child") as child:
            assert trace.current_span() is child
            assert child.trace_id == root.trace_id
            assert child.parent_id == root.span_id
        with trace.span("child"):
            pass
    trace.disable()

    records = load_trace(str(path))
    assert [r["name"] for r in records] == ["child", "child", "root"]
    root_rec = records[-1]
    assert root_rec["parent"] is None
    assert root_rec["attrs"] == {"kind": "test"}
    assert root_rec["dur"] >= 0
    c1, c2 = records[0], records[1]
    assert c1["parent"] == root_rec["span"] == c2["parent"]
    assert c1["span"] != c2["span"]  # sibling seq disambiguates


def test_deterministic_ids_below_a_parent():
    # the subtree below any explicit context has reproducible ids —
    # re-running the same task (fork, spawn, retry) regenerates them
    ctx = trace.SpanContext("tr", "parent-id")

    def run():
        trace.enable(None)
        with trace.capture() as records:
            with trace.span("task", _parent=ctx, _seq=2):
                with trace.span("a"):
                    with trace.span("leaf"):
                        pass
                with trace.span("a"):
                    pass
        trace.disable()
        return [r["span"] for r in records]

    first = run()
    assert first == run()
    assert len(set(first)) == len(first)


def test_root_ids_never_collide_across_processes():
    # roots are salted per process: a second process appending to the
    # same file must not reuse this one's root ids
    import subprocess
    import sys

    trace.enable(None)
    with trace.capture() as records:
        with trace.span("cli.query"):
            pass
    trace.disable()
    code = (
        "from repro.obs import trace\n"
        "trace.enable(None)\n"
        "with trace.capture() as r:\n"
        "    with trace.span('cli.query'):\n"
        "        pass\n"
        "trace.disable()\n"
        "print(r[0]['span'])\n"
    )
    out = subprocess.run([sys.executable, "-c", code], check=True,
                         capture_output=True, text=True,
                         env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
    assert out.stdout.strip() != records[0]["span"]


def test_explicit_parent_and_seq():
    trace.enable(None)
    with trace.capture() as records:
        with trace.span("root") as root:
            ctx = root.context
        with trace.span("task", _parent=ctx, _seq=5):
            pass
        with trace.span("task", _parent=ctx, _seq=6):
            pass
    trace.disable()
    by_name = {}
    for r in records:
        by_name.setdefault(r["name"], []).append(r)
    t5, t6 = by_name["task"]
    root = by_name["root"][0]
    assert t5["parent"] == root["span"]
    assert t5["trace"] == root["trace"]
    assert t5["span"] != t6["span"]


def test_exception_annotates_span_and_propagates():
    trace.enable(None)
    with trace.capture() as records:
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("nope")
    trace.disable()
    assert records[0]["attrs"]["error"] == "ValueError: nope"


def test_enabled_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert trace.enabled_from_env() is None
    monkeypatch.setenv("REPRO_TRACE", "0")
    assert trace.enabled_from_env() is None
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert trace.enabled_from_env() == "repro-trace.jsonl"
    monkeypatch.setenv("REPRO_TRACE_FILE", "/tmp/x.jsonl")
    assert trace.enabled_from_env() == "/tmp/x.jsonl"
    monkeypatch.setenv("REPRO_TRACE", "/tmp/direct.jsonl")
    assert trace.enabled_from_env() == "/tmp/direct.jsonl"


def test_merge_spans_appends_to_sink(tmp_path):
    path = tmp_path / "m.jsonl"
    trace.enable(path)
    with trace.span("parent") as parent:
        ctx = parent.context
        with trace.capture() as worker_records:
            with trace.span("task", _parent=ctx, _seq=0):
                pass
        trace.merge_spans(worker_records)
    trace.disable()
    records = load_trace(str(path))
    forest = build_forest(records)
    assert len(forest) == 1
    assert [c.name for c in forest[0].children] == ["task"]


def test_forest_validation_rejects_orphans():
    rec = {"name": "x", "trace": "t", "span": "s", "parent": "missing",
           "ts": 0.0, "dur": 1.0, "pid": 1, "tid": 1, "attrs": {}}
    with pytest.raises(TraceError, match="orphan"):
        validate_spans([rec])


def test_forest_validation_rejects_child_outside_parent():
    parent = {"name": "p", "trace": "t", "span": "p1", "parent": None,
              "ts": 100.0, "dur": 1.0, "pid": 1, "tid": 1, "attrs": {}}
    child = {"name": "c", "trace": "t", "span": "c1", "parent": "p1",
             "ts": 200.0, "dur": 1.0, "pid": 1, "tid": 1, "attrs": {}}
    with pytest.raises(TraceError, match="outside"):
        validate_spans([parent, child])


def test_forest_validation_rejects_duplicate_ids():
    rec = {"name": "x", "trace": "t", "span": "s", "parent": None,
           "ts": 0.0, "dur": 1.0, "pid": 1, "tid": 1, "attrs": {}}
    with pytest.raises(TraceError, match="duplicate"):
        validate_spans([rec, dict(rec)])


def test_load_trace_rejects_bad_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"name": "x"}\n')
    with pytest.raises(TraceError, match="missing fields"):
        load_trace(str(path))
    path.write_text("not json\n")
    with pytest.raises(TraceError, match="not JSON"):
        load_trace(str(path))


def test_flame_summary_groups_siblings(tmp_path):
    path = tmp_path / "f.jsonl"
    trace.enable(path)
    with trace.span("run"):
        for _ in range(3):
            with trace.span("task"):
                pass
    trace.disable()
    text = flame_summary(load_trace(str(path)))
    assert "run" in text
    assert "task ×3" in text
    assert "4 spans, 1 roots" in text


def test_chrome_export_shape(tmp_path):
    path = tmp_path / "c.jsonl"
    trace.enable(path)
    with trace.span("serve.query", shard=3):
        pass
    trace.disable()
    doc = to_chrome(load_trace(str(path)))
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    ev = doc["traceEvents"][0]
    assert ev["ph"] == "X"
    assert ev["cat"] == "serve"
    assert ev["args"]["shard"] == 3
    assert ev["dur"] >= 0
    json.dumps(doc)  # must be serializable


def test_multiprocess_append_shares_one_file(tmp_path):
    # two enable/disable cycles (as two processes would) append, not clobber
    path = tmp_path / "shared.jsonl"
    trace.enable(path)
    with trace.span("first"):
        pass
    trace.disable()
    trace.enable(path)
    with trace.span("second"):
        pass
    trace.disable()
    names = [r["name"] for r in load_trace(str(path))]
    assert names == ["first", "second"]

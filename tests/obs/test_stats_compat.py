"""Golden-compat pins for the stats silos' public output shapes.

These literals were captured from the pre-``repro.obs`` implementations
of ``PipelineStats``, ``ServiceStats`` and ``StreamStats``.  The
registry re-base must be observably invisible: same ``report()`` text,
same ``snapshot()`` dict, same ``state_dict()`` keys and values, byte
for byte.  A diff here means a caller-visible behavior change, not a
formatting preference.
"""

from __future__ import annotations

from repro.pipeline.stats import PipelineStats
from repro.serve.session import Admission
from repro.serve.stats import ServiceStats
from repro.stream.stats import StreamStats

PIPELINE_REPORT = (
    "pipeline stages\n"
    "stage     calls  seconds  rows in  rows out  bytes  cache\n"
    "--------  -----  -------  -------  --------  -----  -----\n"
    "coarsen   2      0.500    100      10        800    1/4  \n"
    "fused     1      1.250    50       5         400    0/0  \n"
    "  - read  1      0.750    50       50        0      0/0  \n"
    "cache: 1/4 chunk tasks served from cache (25%)"
)

SERVICE_SNAPSHOT = {
    "queries": 6,
    "ok": 4,
    "rejected": 1,
    "errors": 1,
    "cache_hits": 1,
    "cache_shared": 1,
    "executed": 2,
    "rows_served": 390,
    "shards_scanned": 6,
    "shards_pruned": 6,
    "frag_hits": 1,
    "frag_shared": 1,
    "frag_misses": 2,
    "tasks_full": 2,
    "tasks_aligned": 1,
    "tasks_partial": 1,
    "fragment_hit_ratio": 0.5,
    "partial_coverage_ratio": 0.5,
    "fanout_mean": 3.0,
    "encode_offloads": 3,
    "p50_ms": 6.5,
    "p99_ms": 29.4,
    "running": 1,
    "queued": 0,
    "rejected_capacity": 1,
    "rejected_quota": 0,
    "tenants": {
        "alice": {
            "queries": 4,
            "ok": 3,
            "rejected": 1,
            "queued": 2,
            "cache_hits": 1,
            "frag_hits": 2,
            "shards_scanned": 6,
            "rows_served": 270,
        }
    },
}

SERVICE_REPORT = (
    "query service\n"
    "counter                            value      \n"
    "---------------------------------  -----------\n"
    "queries                            6          \n"
    "ok / rejected / errors             4 / 1 / 1  \n"
    "cache hits / shared / executed     1 / 1 / 2  \n"
    "rows served                        390        \n"
    "shards scanned / pruned            6 / 6      \n"
    "fragments hit / shared / computed  1 / 1 / 2  \n"
    "fragment hit ratio                 0.50       \n"
    "tasks full / aligned / partial     2 / 1 / 1  \n"
    "partial-coverage ratio             0.50       \n"
    "shard fan-out mean / p99           3.0 / 4    \n"
    "encode offloads                    3          \n"
    "latency p50 / p99 (ms)             6.5 / 29.4 \n"
    "exec p50 / p99 (ms)                18.0 / 27.8\n"
    "tenants\n"
    "tenant  queries  ok  rejected  queued  hits  frags  shards  rows  "
    "seconds\n"
    "------  -------  --  --------  ------  ----  -----  ------  ----  "
    "-------\n"
    "alice   4        3   1         2       1     2      6       270   "
    "0.125  "
)

STREAM_REPORT = (
    "stream nodes\n"
    "node     batches  rows in  rows out  late  stalls  peak q  lag s  "
    "seconds\n"
    "-------  -------  -------  --------  ----  ------  ------  -----  "
    "-------\n"
    "source   10       1000     1000      0     0       0       -      "
    "0.500  \n"
    "coarsen  10       1000     100       7     2       5       1.50   "
    "0.250  \n"
    "watermark accounting: 7 late rows dropped; 2 backpressure stalls"
)

STREAM_STATE = {
    "source": {
        "batches_in": 10, "batches_out": 10, "rows_in": 1000,
        "rows_out": 1000, "late_rows": 0, "nan_rows": 0, "stalls": 0,
        "max_queue": 0, "wall_s": 0.5, "lag_sum_s": 0.0, "lag_n": 0,
    },
    "coarsen": {
        "batches_in": 10, "batches_out": 9, "rows_in": 1000,
        "rows_out": 100, "late_rows": 7, "nan_rows": 3, "stalls": 2,
        "max_queue": 5, "wall_s": 0.25, "lag_sum_s": 12.0, "lag_n": 8,
    },
}


def make_pipeline_stats() -> PipelineStats:
    ps = PipelineStats()
    ps.record("coarsen", wall_s=0.5, calls=2, rows_in=100, rows_out=10,
              bytes_out=800, cache_hits=1, cache_misses=3)
    ps.record("fused", wall_s=1.25, calls=1, rows_in=50, rows_out=5,
              bytes_out=400)
    ps.record("fused/read", wall_s=0.75, calls=1, rows_in=50, rows_out=50)
    return ps


def make_service_stats() -> tuple[ServiceStats, Admission]:
    ss = ServiceStats()
    ss.record_ok(cache="miss", rows=120, elapsed_s=0.010, shards_scanned=4,
                 shards_pruned=2, executed_s=0.008,
                 fragments={"hits": 1, "shared": 1, "misses": 2,
                            "full": 2, "aligned": 1, "partial": 1})
    ss.record_ok(cache="hit", rows=120, elapsed_s=0.002)
    ss.record_ok(cache="shared", rows=120, elapsed_s=0.003)
    ss.record_ok(cache="miss", rows=30, elapsed_s=0.030, shards_scanned=2,
                 shards_pruned=4, executed_s=0.028)
    ss.record_rejected()
    ss.record_error()
    ss.encode_offloads = 3
    adm = Admission(max_inflight=2, max_queue=2, tenant_inflight=2)
    t = adm.tenant("alice")
    t.queries, t.ok, t.rejected, t.queued = 4, 3, 1, 2
    t.cache_hits, t.frag_hits, t.shards_scanned, t.rows_served = 1, 2, 6, 270
    t.wall_s = 0.125
    adm.running, adm.waiting = 1, 0
    adm.rejected_capacity, adm.rejected_quota = 1, 0
    return ss, adm


def make_stream_stats() -> StreamStats:
    st = StreamStats()
    n = st.node("source")
    n.batches_in, n.batches_out, n.rows_in, n.rows_out = 10, 10, 1000, 1000
    n.wall_s = 0.5
    c = st.node("coarsen")
    c.batches_in, c.batches_out, c.rows_in, c.rows_out = 10, 9, 1000, 100
    c.late_rows, c.nan_rows, c.stalls, c.max_queue = 7, 3, 2, 5
    c.wall_s, c.lag_sum_s, c.lag_n = 0.25, 12.0, 8
    return st


def test_pipeline_report_shape_pinned():
    assert make_pipeline_stats().report() == PIPELINE_REPORT


def test_pipeline_counter_access_pinned():
    ps = make_pipeline_stats()
    st = ps.stage("coarsen")
    assert (st.calls, st.wall_s, st.rows_in, st.rows_out) == (2, 0.5, 100, 10)
    assert (st.bytes_out, st.cache_hits, st.cache_misses) == (800, 1, 3)
    assert st.cache_hit_ratio == 0.25
    assert ps.total_cache_hits == 1
    assert ps.total_cache_misses == 3
    assert ps.cache_hit_ratio == 0.25


def test_pipeline_merge_pinned():
    a, b = make_pipeline_stats(), make_pipeline_stats()
    a.merge(b)
    st = a.stage("coarsen")
    assert (st.calls, st.cache_hits, st.cache_misses) == (4, 2, 6)
    assert st.wall_s == 1.0


def test_service_snapshot_shape_pinned():
    ss, adm = make_service_stats()
    assert ss.snapshot(adm) == SERVICE_SNAPSHOT
    bare = ss.snapshot()
    assert "tenants" not in bare and "running" not in bare
    assert bare == {k: v for k, v in SERVICE_SNAPSHOT.items()
                    if k not in ("running", "queued", "rejected_capacity",
                                 "rejected_quota", "tenants")}


def test_service_report_shape_pinned():
    ss, adm = make_service_stats()
    assert ss.report(adm) == SERVICE_REPORT
    # without tenants only the counter table renders
    assert ss.report() == SERVICE_REPORT.split("\ntenants\n")[0]


def test_service_empty_latency_renders_dash():
    ss = ServiceStats()
    text = ss.report()
    row = next(l for l in text.splitlines()
               if l.startswith("latency p50 / p99 (ms)"))
    assert row.rstrip().endswith("- / -")
    snap = ss.snapshot()
    # NaN percentiles are forwarded as-is on the empty snapshot
    assert snap["queries"] == 0 and snap["fanout_mean"] == 0.0


def test_stream_report_shape_pinned():
    assert make_stream_stats().report() == STREAM_REPORT


def test_stream_state_dict_pinned():
    assert make_stream_stats().state_dict() == STREAM_STATE


def test_stream_state_roundtrip():
    st = StreamStats()
    st.load_state(STREAM_STATE)
    assert st.state_dict() == STREAM_STATE
    assert st.report() == STREAM_REPORT
    assert st.total_late_rows == 7
    assert st.total_stalls == 2
    assert st.node("coarsen").mean_lag_s == 1.5

"""Unit tests for the configuration module."""

import numpy as np
import pytest

from repro.config import (
    SCHEDULING_CLASSES,
    SUMMIT,
    SummitConfig,
    celsius_to_fahrenheit,
    class_of_node_count,
    fahrenheit_to_celsius,
)


class TestSchedulingClasses:
    def test_table3_values(self):
        assert [c.min_nodes for c in SCHEDULING_CLASSES] == [2765, 922, 92, 46, 1]
        assert [c.max_nodes for c in SCHEDULING_CLASSES] == [4608, 2764, 921, 91, 45]
        assert [c.max_walltime_h for c in SCHEDULING_CLASSES] == [24, 24, 12, 6, 2]

    def test_class_of_node_count(self):
        assert class_of_node_count(4608) == 1
        assert class_of_node_count(1000) == 2
        assert class_of_node_count(100) == 3
        assert class_of_node_count(50) == 4
        assert class_of_node_count(1) == 5

    def test_class_of_out_of_range(self):
        with pytest.raises(ValueError):
            class_of_node_count(0)
        with pytest.raises(ValueError):
            class_of_node_count(5000)

    def test_contains(self):
        assert SCHEDULING_CLASSES[0].contains(3000)
        assert not SCHEDULING_CLASSES[0].contains(100)


class TestSummitConfig:
    def test_totals(self):
        assert SUMMIT.n_gpus == 27_756
        assert SUMMIT.n_cpus == 9_252
        assert SUMMIT.max_job_nodes == 4608

    def test_node_idle_consistent_with_system_idle(self):
        # idle power x nodes ~ 2.5 MW (Section 4.1)
        assert abs(SUMMIT.node_idle_w * SUMMIT.n_nodes / 1e6 - 2.5) < 0.3

    def test_scaled_preserves_per_node_physics(self):
        s = SUMMIT.scaled(100)
        assert s.n_nodes == 100
        assert s.cpu_tdp_w == SUMMIT.cpu_tdp_w
        assert s.node_max_power_w == SUMMIT.node_max_power_w
        assert s.node_idle_w == SUMMIT.node_idle_w

    def test_scaled_envelope_linear(self):
        s = SUMMIT.scaled(SUMMIT.n_nodes // 2)
        assert s.system_peak_mw == pytest.approx(SUMMIT.system_peak_mw / 2, rel=0.01)

    def test_scaled_cabinets_ceil(self):
        s = SUMMIT.scaled(19)
        assert s.n_cabinets == 2

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            SUMMIT.scaled(0)

    def test_scaled_classes_cover_machine(self):
        for n in (10, 45, 90, 180, 500, 4626):
            cfg = SUMMIT.scaled(n) if n != 4626 else SUMMIT
            classes = cfg.scheduling_classes()
            assert classes[0].max_nodes <= cfg.n_nodes
            # every node count from 1..max is classifiable
            for k in (1, classes[0].max_nodes, classes[0].max_nodes // 2):
                assert cfg.class_of(k) in (1, 2, 3, 4, 5)

    def test_scaled_classes_nonempty(self):
        for n in (10, 50, 90, 300):
            for c in SUMMIT.scaled(n).scheduling_classes():
                assert c.min_nodes >= 1
                assert c.max_nodes >= c.min_nodes

    def test_full_scale_classes_identical(self):
        assert SUMMIT.scheduling_classes() == SCHEDULING_CLASSES

    def test_class_of_scaled_out_of_range(self):
        cfg = SUMMIT.scaled(90)
        with pytest.raises(ValueError):
            cfg.class_of(10_000)

    def test_frozen(self):
        with pytest.raises(Exception):
            SUMMIT.n_nodes = 1


class TestTemperatureConversion:
    def test_roundtrip(self):
        assert fahrenheit_to_celsius(70.0) == pytest.approx(21.111, abs=1e-3)
        assert celsius_to_fahrenheit(fahrenheit_to_celsius(85.0)) == pytest.approx(85.0)

    def test_known_points(self):
        assert fahrenheit_to_celsius(32.0) == 0.0
        assert celsius_to_fahrenheit(100.0) == 212.0

"""Unit tests for schema, sensors, collector, and MSB meters."""

import numpy as np
import pytest

from repro.config import SUMMIT
from repro.machine import Topology
from repro.telemetry import (
    LossEvent,
    MsbMeters,
    TelemetrySampler,
    power_metrics,
    quantize_power,
    sensor_noise,
    temperature_metrics,
)
from repro.telemetry.schema import METRICS, N_METRICS
from repro.telemetry.sensors import quantize_temperature, sensor_gains


class TestSchema:
    def test_over_100_metrics(self):
        assert N_METRICS > 100

    def test_names_unique(self):
        names = [m.name for m in METRICS]
        assert len(names) == len(set(names))

    def test_kind_partition(self):
        p = set(power_metrics())
        t = set(temperature_metrics())
        assert not (p & t)
        assert "input_power" in p
        assert "gpu0_core_temp" in t


class TestSensors:
    def test_quantize_power(self):
        assert np.array_equal(quantize_power(np.array([1.4, 1.6])), [1.0, 2.0])

    def test_quantize_temperature(self):
        assert np.array_equal(quantize_temperature(np.array([45.4])), [45.0])

    def test_sensor_noise_unbiased(self, rng):
        true = np.full(20_000, 1000.0)
        meas = sensor_noise(rng, true, dynamic_w=100.0)
        assert abs(meas.mean() - 1000.0) < 1.0
        assert 15.0 < meas.std() < 40.0  # 0.25 * 100 W plus quantization

    def test_sensor_noise_nonnegative(self, rng):
        meas = sensor_noise(rng, np.full(1000, 2.0), dynamic_w=50.0)
        assert np.all(meas >= 0.0)

    def test_gain_applies(self, rng):
        true = np.full(10_000, 1000.0)
        meas = sensor_noise(rng, true, dynamic_w=0.0, gain=1.02)
        assert abs(meas.mean() - 1020.0) < 1.0

    def test_sensor_gains_near_one(self, rng):
        g = sensor_gains(rng, 5000)
        assert abs(g.mean() - 1.0) < 0.001


class TestSampler:
    def test_row_count_and_columns(self, twin):
        arr = twin.builder.build(0.0, 60.0, 1.0, per_gpu=True)
        tel = twin.sampler().sample(arr)
        assert tel.n_rows == twin.config.n_nodes * 60
        assert "input_power" in tel
        assert "p0_gpu0_power" in tel

    def test_timestamps_delayed(self, twin):
        arr = twin.builder.build(0.0, 30.0, 1.0)
        tel = twin.sampler().sample(arr)
        true_t = np.tile(arr.times, twin.config.n_nodes)
        delay = tel["timestamp"] - true_t
        assert np.all(delay >= 0.0)
        assert np.all(delay <= TelemetrySampler.MAX_DELAY_S)
        assert 1.5 < delay.mean() < 3.5  # paper: 2.5 s average

    def test_power_tracks_truth(self, twin):
        arr = twin.builder.build(0.0, 60.0, 1.0)
        tel = twin.sampler().sample(arr)
        meas = tel["input_power"].reshape(twin.config.n_nodes, -1)
        err = (meas - arr.node_input_w) / arr.node_input_w
        assert abs(err.mean()) < 0.02
        assert np.percentile(np.abs(err), 95) < 0.2

    def test_socket_split_sums_to_cpu_total(self, twin):
        arr = twin.builder.build(0.0, 20.0, 1.0)
        tel = twin.sampler().sample(arr)
        total = (tel["p0_power"] + tel["p1_power"]).reshape(
            twin.config.n_nodes, -1
        )
        assert np.allclose(total, arr.node_cpu_w, atol=1.5)

    def test_temperature_channels(self, twin):
        arr = twin.builder.build(0.0, 20.0, 1.0, per_gpu=True)
        temps = twin.thermal.gpu_temperature(
            np.arange(twin.config.n_nodes), arr.gpu_power_w, 21.1, 1.0
        )
        tel = twin.sampler().sample(arr, gpu_temps=temps)
        assert "gpu5_core_temp" in tel
        assert 20.0 < np.nanmean(tel["gpu0_core_temp"]) < 70.0

    def test_loss_event_temperature(self, twin):
        arr = twin.builder.build(0.0, 20.0, 1.0, per_gpu=True)
        temps = twin.thermal.gpu_temperature(
            np.arange(twin.config.n_nodes), arr.gpu_power_w, 21.1, 1.0
        )
        ev = LossEvent(5.0, 15.0, scope="temperature")
        tel = twin.sampler().sample(arr, gpu_temps=temps)
        tel_lost = TelemetrySampler(twin.config, twin.spec.seed, [ev]).sample(
            arr, gpu_temps=temps
        )
        assert np.isnan(tel_lost["gpu0_core_temp"]).any()
        assert not np.isnan(tel_lost["input_power"]).any()
        assert not np.isnan(tel["gpu0_core_temp"]).any()

    def test_loss_event_drops_rows(self, twin):
        arr = twin.builder.build(0.0, 20.0, 1.0)
        ev = LossEvent(0.0, 20.0, nodes=(0, 1), scope="all")
        tel = TelemetrySampler(twin.config, 0, [ev]).sample(arr)
        assert tel.n_rows == (twin.config.n_nodes - 2) * 20
        assert 0 not in tel["node"]

    def test_unknown_scope(self, twin):
        arr = twin.builder.build(0.0, 10.0, 1.0)
        ev = LossEvent(0.0, 10.0, scope="everything")
        with pytest.raises(ValueError):
            TelemetrySampler(twin.config, 0, [ev]).sample(arr)


class TestMsbMeters:
    def test_meter_above_summation(self, twin):
        """Figure 4: summation sits systematically below the meter."""
        arr = twin.builder.build(0.0, 600.0, 10.0)
        msb = twin.msb
        meter = msb.measure(arr.node_input_w)
        summ = msb.node_summation(arr.node_input_w)
        diff = summ - meter
        assert diff.mean() < 0
        rel = abs(diff.sum(axis=0).mean()) / meter.sum(axis=0).mean()
        assert 0.05 < rel < 0.18  # paper: ~11%

    def test_per_msb_offsets_differ(self, twin):
        arr = twin.builder.build(0.0, 600.0, 10.0)
        meter = twin.msb.measure(arr.node_input_w)
        summ = twin.msb.node_summation(arr.node_input_w)
        means = (summ - meter).mean(axis=1)
        assert means.std() > 0  # "subtle differences ... across MSBs"

    def test_in_phase(self, twin):
        """Meter and summation oscillate in phase at 10 s resolution."""
        arr = twin.builder.build(0.0, 3600.0, 10.0)
        meter = twin.msb.measure(arr.node_input_w)
        summ = twin.msb.node_summation(arr.node_input_w)
        for m in range(twin.topology.n_msbs):
            dm, ds = np.diff(meter[m]), np.diff(summ[m])
            if dm.std() > 0 and ds.std() > 0 and ds.std() > twin.msb.meter_noise_w:
                assert np.corrcoef(dm, ds)[0, 1] > 0.5

    def test_measure_shape(self, twin):
        arr = twin.builder.build(0.0, 100.0, 10.0)
        assert twin.msb.measure(arr.node_input_w).shape == (
            twin.topology.n_msbs, 10,
        )

"""Unit tests for the ingest-path model."""

import numpy as np
import pytest

from repro.config import SUMMIT
from repro.telemetry import (
    FAN_IN_RATIO,
    ingest_budget,
    sample_propagation_delays,
)


class TestBudget:
    def test_full_scale_rate_matches_paper(self):
        b = ingest_budget(SUMMIT)
        # paper: 460k metrics/s at ~100 metrics/node, 4,626 nodes, 1 Hz
        assert 4.0e5 < b.metrics_per_second < 5.5e5

    def test_one_megabyte_per_second(self):
        b = ingest_budget(SUMMIT)
        # paper: "a manageable 1 MB/s data stream"
        assert 0.5e6 < b.bytes_per_second < 1.6e6

    def test_fan_in_sizing(self):
        b = ingest_budget(SUMMIT)
        assert b.n_service_nodes == -(-4626 // FAN_IN_RATIO)  # 17 at 288:1

    def test_mean_delay_matches_measured(self):
        b = ingest_budget(SUMMIT)
        assert b.mean_delay_s == pytest.approx(4.1, abs=0.2)
        assert b.max_delay_s > b.mean_delay_s

    def test_scales_with_machine(self):
        small = ingest_budget(SUMMIT.scaled(90))
        full = ingest_budget(SUMMIT)
        assert small.metrics_per_second < full.metrics_per_second / 40
        assert small.n_service_nodes == 1


class TestDelaySamples:
    def test_mean_and_bounds(self, rng):
        d = sample_propagation_delays(rng, 100_000)
        assert d.mean() == pytest.approx(4.1, abs=0.1)
        assert d.min() > 0.8
        assert d.max() < 7.4

    def test_deterministic_with_seed(self):
        a = sample_propagation_delays(np.random.default_rng(1), 10)
        b = sample_propagation_delays(np.random.default_rng(1), 10)
        assert np.array_equal(a, b)

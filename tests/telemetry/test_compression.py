"""Unit + property tests for the lossless telemetry codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.telemetry import (
    compression_ratio,
    decode_timeseries,
    encode_timeseries,
)


class TestRoundtrip:
    def test_simple(self):
        x = np.array([100.0, 101.0, 101.0, 99.0, 150.0])
        assert np.array_equal(decode_timeseries(encode_timeseries(x)), x)

    def test_negative_values(self):
        x = np.array([-1000.0, -999.0, 0.0, 1000.0])
        assert np.array_equal(decode_timeseries(encode_timeseries(x)), x)

    def test_empty(self):
        x = np.empty(0)
        assert np.array_equal(decode_timeseries(encode_timeseries(x)), x)

    def test_single_value(self):
        x = np.array([42.0])
        assert np.array_equal(decode_timeseries(encode_timeseries(x)), x)

    def test_fractional_lsb(self):
        x = np.array([0.5, 1.0, 2.5, -0.5])
        blob = encode_timeseries(x, lsb=0.5)
        assert np.array_equal(decode_timeseries(blob), x)

    def test_non_integral_rejected(self):
        with pytest.raises(ValueError, match="lossy"):
            encode_timeseries(np.array([1.3]), lsb=1.0)

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="blob"):
            decode_timeseries(b"XXXX" + b"\x00" * 32)

    def test_large_deltas(self):
        x = np.array([0.0, 2**40, -(2.0**40), 17.0])
        assert np.array_equal(decode_timeseries(encode_timeseries(x)), x)


class TestCompression:
    def test_smooth_series_compress_well(self, rng):
        """Telemetry-like series (smooth random walk) must beat 5x."""
        x = np.round(np.cumsum(rng.normal(0, 2, 50_000)) + 1000)
        assert compression_ratio(x) > 5.0

    def test_constant_series_compress_extremely(self):
        x = np.full(10_000, 230.0)
        assert compression_ratio(x) > 100.0

    def test_noise_still_lossless(self, rng):
        x = np.round(rng.normal(0, 1e6, 5000))
        blob = encode_timeseries(x)
        assert np.array_equal(decode_timeseries(blob), x)

    def test_empty_ratio(self):
        assert compression_ratio(np.empty(0)) == 1.0


class TestCorruptBlobs:
    """Truncated/mangled archives must raise, never misdecode."""

    @pytest.fixture()
    def blob(self) -> bytes:
        return encode_timeseries(np.array([10.0, 11.0, 9.0, 9.0, 30.0]))

    def test_short_header(self, blob):
        with pytest.raises(ValueError, match="truncated header"):
            decode_timeseries(blob[:12])

    def test_empty_blob(self):
        with pytest.raises(ValueError, match="magic"):
            decode_timeseries(b"")

    def test_truncated_zlib_payload(self, blob):
        with pytest.raises(ValueError, match="zlib"):
            decode_timeseries(blob[:-3])

    def test_garbage_zlib_payload(self, blob):
        with pytest.raises(ValueError, match="zlib"):
            decode_timeseries(blob[:20] + b"\x01\x02\x03\x04")

    def test_count_larger_than_payload(self, blob):
        big = np.uint64(2**48).tobytes()
        with pytest.raises(ValueError, match="count"):
            decode_timeseries(blob[:4] + big + blob[12:])

    def test_count_mismatch_in_varint_stream(self, blob):
        # claim one value fewer than the stream actually holds
        wrong = np.uint64(4).tobytes()
        with pytest.raises(ValueError, match="varint"):
            decode_timeseries(blob[:4] + wrong + blob[12:])

    def test_trailing_bytes_after_empty_series(self):
        import zlib

        empty = encode_timeseries(np.empty(0))
        tampered = empty[:20] + zlib.compress(b"\x05")
        with pytest.raises(ValueError, match="varint"):
            decode_timeseries(tampered)

    def test_unusable_lsb(self, blob):
        zero = np.float64(0.0).tobytes()
        with pytest.raises(ValueError, match="lsb"):
            decode_timeseries(blob[:12] + zero + blob[20:])
        inf = np.float64(np.inf).tobytes()
        with pytest.raises(ValueError, match="lsb"):
            decode_timeseries(blob[:12] + inf + blob[20:])


class TestProperties:
    @given(
        hnp.arrays(
            np.int64,
            st.integers(0, 500),
            elements=st.integers(-(2**40), 2**40),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_any_integers(self, ints):
        x = ints.astype(np.float64)
        assert np.array_equal(decode_timeseries(encode_timeseries(x)), x)

    @given(st.integers(1, 200), st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_runs_compress(self, n, v):
        x = np.full(n * 10, float(v))
        blob = encode_timeseries(x)
        assert np.array_equal(decode_timeseries(blob), x)

    @given(
        hnp.arrays(
            np.int64,
            st.integers(0, 300),
            elements=st.integers(-(2**40), 2**40),
        ),
        st.sampled_from([0.5, 0.25, 2.0, 10.0, 0.125]),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_non_unit_lsb(self, ints, lsb):
        x = ints.astype(np.float64) * lsb
        assert np.array_equal(decode_timeseries(encode_timeseries(x, lsb)), x)

    @given(st.integers(1, 400))
    @settings(max_examples=30, deadline=None)
    def test_strictly_decreasing_series(self, n):
        # every delta negative: exercises the zigzag sign path end to end
        x = -np.arange(n, dtype=np.float64) * 7.0 + 3.0
        assert np.array_equal(decode_timeseries(encode_timeseries(x)), x)

    @given(
        hnp.arrays(
            np.int64,
            st.integers(1, 200),
            elements=st.integers(-(2**40), 2**40),
        ),
        st.integers(1, 19),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_header_truncation_raises(self, ints, cut):
        blob = encode_timeseries(ints.astype(np.float64))
        with pytest.raises(ValueError):
            decode_timeseries(blob[:cut])

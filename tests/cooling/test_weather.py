"""Unit tests for the weather model."""

import numpy as np
import pytest

from repro.cooling import Weather
from repro.cooling.weather import SECONDS_PER_DAY, SECONDS_PER_YEAR


@pytest.fixture(scope="module")
def weather():
    return Weather(seed=0)


@pytest.fixture(scope="module")
def year(weather):
    t = np.arange(0, SECONDS_PER_YEAR, 3600.0)
    return t, weather.dry_bulb_c(t), weather.wet_bulb_c(t)


class TestSeasonality:
    def test_summer_warmer_than_winter(self, year):
        t, db, _ = year
        jan = db[t < 31 * SECONDS_PER_DAY]
        jul = db[(t > 181 * SECONDS_PER_DAY) & (t < 212 * SECONDS_PER_DAY)]
        assert jul.mean() - jan.mean() > 15.0

    def test_tennessee_ranges(self, year):
        _, db, wb = year
        assert -15 < db.min() < 5
        assert 28 < db.max() < 42
        assert wb.max() < 30.0

    def test_wet_bulb_below_dry_bulb(self, year):
        _, db, wb = year
        assert np.all(wb < db)

    def test_diurnal_cycle(self, weather):
        # afternoon warmer than pre-dawn on the same summer day
        day = 200 * SECONDS_PER_DAY
        pre_dawn = weather.dry_bulb_c(np.array([day + 4 * 3600.0]))[0]
        afternoon = weather.dry_bulb_c(np.array([day + 15 * 3600.0]))[0]
        assert afternoon > pre_dawn + 3.0

    def test_summer_wet_bulb_forces_chillers(self, weather, year):
        """Summer wet bulb must frequently exceed the ~17.6 degC level
        beyond which towers cannot reach the MTW setpoint."""
        t, _, wb = year
        summer = weather.summer_mask(t)
        assert (wb[summer] > 17.6).mean() > 0.3
        winter = t < 60 * SECONDS_PER_DAY
        assert (wb[winter] > 17.6).mean() < 0.02


class TestDeterminism:
    def test_seed_reproducible(self):
        t = np.arange(0, 10 * SECONDS_PER_DAY, 600.0)
        assert np.array_equal(Weather(3).dry_bulb_c(t), Weather(3).dry_bulb_c(t))

    def test_seed_changes_noise(self):
        t = np.arange(0, 10 * SECONDS_PER_DAY, 600.0)
        assert not np.array_equal(Weather(3).dry_bulb_c(t), Weather(4).dry_bulb_c(t))

    def test_pointwise_evaluation(self, weather):
        """Any window is computable without simulating from t=0."""
        t = np.array([123_456.0, 20_000_000.0])
        a = weather.dry_bulb_c(t)
        b = np.array([weather.dry_bulb_c(np.array([x]))[0] for x in t])
        assert np.allclose(a, b)


class TestSummerMask:
    def test_window_bounds(self, weather):
        d = SECONDS_PER_DAY
        assert not weather.summer_mask(np.array([203.0 * d]))[0]
        assert weather.summer_mask(np.array([205.0 * d]))[0]
        assert weather.summer_mask(np.array([270.0 * d]))[0]
        assert not weather.summer_mask(np.array([280.0 * d]))[0]

"""Unit tests for the component thermal model."""

import numpy as np
import pytest

from repro.config import SUMMIT
from repro.cooling import ComponentThermalModel, first_order_lag
from repro.machine import ChipPopulation, Topology


@pytest.fixture(scope="module")
def model():
    cfg = SUMMIT.scaled(54)
    return ComponentThermalModel(cfg, seed=2)


class TestFirstOrderLag:
    def test_step_response(self):
        x = np.concatenate([np.full(5, 10.0), np.full(100, 20.0)])
        y = first_order_lag(x, dt=1.0, tau=5.0)
        assert y[0] == 10.0
        assert y[4] == pytest.approx(10.0)
        # one tau after the step: ~63% of the way
        assert y[5 + 5] == pytest.approx(10 + 10 * (1 - np.exp(-6 / 5)), rel=0.05)
        assert y[-1] == pytest.approx(20.0, abs=0.01)

    def test_zero_tau_identity(self):
        x = np.random.default_rng(0).normal(size=50)
        assert np.array_equal(first_order_lag(x, 1.0, 0.0), x)

    def test_multidimensional(self):
        x = np.zeros((3, 2, 40))
        x[..., 20:] = 1.0
        y = first_order_lag(x, 1.0, 5.0)
        assert y.shape == x.shape
        assert np.all(y[..., -1] > 0.9)

    def test_no_startup_transient(self):
        x = np.full(30, 42.0)
        y = first_order_lag(x, 1.0, 10.0)
        assert np.allclose(y, 42.0)


class TestGpuTemperature:
    def test_steady_state_linear_in_power(self, model):
        nodes = np.arange(10)
        lo = model.gpu_temperature(nodes, np.full((10, 6), 100.0), 21.0, 10.0)
        hi = model.gpu_temperature(nodes, np.full((10, 6), 300.0), 21.0, 10.0)
        assert np.all(hi > lo)
        # slot 0 has no upstream preheat: delta is exactly R * delta-P
        r = model.chips.gpu_thermal_of_nodes(nodes)
        assert np.allclose(hi[:, 0] - lo[:, 0], r[:, 0] * 200.0, rtol=1e-6)
        assert np.allclose(hi[:, 3] - lo[:, 3], r[:, 3] * 200.0, rtol=1e-6)
        # downstream slots additionally gain the upstream preheat
        assert np.all((hi[:, 2] - lo[:, 2]) > (r[:, 2] * 200.0))

    def test_realistic_band(self, model):
        """Figure 17: at high load the vast majority of GPUs stay <60 degC."""
        nodes = np.arange(model.config.n_nodes)
        temps = model.gpu_temperature(
            nodes, np.full((model.config.n_nodes, 6), 290.0), 21.1, 10.0
        )
        assert (temps < 60.0).mean() > 0.95
        assert temps.mean() > 40.0

    def test_spread_matches_paper_scale(self, model):
        """~16 degC non-outlier spread at equal power (Section 6.2)."""
        nodes = np.arange(model.config.n_nodes)
        temps = model.gpu_temperature(
            nodes, np.full((model.config.n_nodes, 6), 280.0), 21.1, 10.0
        ).ravel()
        spread = np.percentile(temps, 99) - np.percentile(temps, 1)
        assert 8.0 < spread < 25.0

    def test_cooling_order_preheat(self, model):
        """Downstream GPUs (slots 1, 2) see warmer water than slot 0."""
        nodes = np.arange(5)
        temps = model.gpu_temperature(nodes, np.full((5, 6), 300.0), 21.0, 10.0)
        # remove chip-R variation by comparing the preheat analytically:
        # slot2 preheated by slots 0+1 -> ~(300+300)/160 = 3.75 degC
        p = np.full((5, 6), 300.0)
        no_r = temps - model.chips.gpu_thermal_of_nodes(nodes) * p
        assert np.all(no_r[:, 2] > no_r[:, 0] + 2.0)
        assert np.all(no_r[:, 1] > no_r[:, 0] + 0.5)
        # socket symmetry: slots 3..5 mirror 0..2
        assert np.allclose(no_r[:, 3:] - no_r[:, :3], 0.0, atol=1e-9)

    def test_supply_temperature_offsets(self, model):
        nodes = np.arange(4)
        p = np.full((4, 6), 200.0)
        cold = model.gpu_temperature(nodes, p, 18.0, 10.0)
        warm = model.gpu_temperature(nodes, p, 22.0, 10.0)
        assert np.allclose(warm - cold, 4.0, atol=1e-9)

    def test_time_series_lag(self, model):
        nodes = np.arange(3)
        p = np.zeros((3, 6, 180))
        p[..., 30:] = 300.0
        temps = model.gpu_temperature(nodes, p, 21.0, 1.0)
        # right after the step the lagged temp is below steady state
        steady = model.gpu_temperature(nodes, p, 21.0, 1.0, lag=False)
        assert np.all(temps[..., 31] < steady[..., 31])
        # ten time constants later the lag has settled
        assert np.allclose(temps[..., -1], steady[..., -1], atol=0.5)


class TestCpuTemperature:
    def test_cpu_flatter_than_gpu(self, model):
        """Figure 12: CPU temps stay nearly fixed through load changes."""
        nodes = np.arange(8)
        cpu_lo = model.cpu_temperature(nodes, np.full((8, 2), 120.0), 21.0, 10.0)
        cpu_hi = model.cpu_temperature(nodes, np.full((8, 2), 290.0), 21.0, 10.0)
        gpu_lo = model.gpu_temperature(nodes, np.full((8, 6), 50.0), 21.0, 10.0)
        gpu_hi = model.gpu_temperature(nodes, np.full((8, 6), 300.0), 21.0, 10.0)
        assert (gpu_hi - gpu_lo).mean() > 2.0 * (cpu_hi - cpu_lo).mean()


class TestSpatialOffsets:
    def test_cabinet_offsets_exist(self, model):
        assert model.cabinet_offset_c.shape == (model.topology.n_cabinets,)
        assert model.cabinet_offset_c.std() > 0.1

    def test_deterministic(self):
        cfg = SUMMIT.scaled(54)
        a = ComponentThermalModel(cfg, seed=9)
        b = ComponentThermalModel(cfg, seed=9)
        assert np.array_equal(a.cabinet_offset_c, b.cabinet_offset_c)

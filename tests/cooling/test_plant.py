"""Unit tests for the central energy plant."""

import numpy as np
import pytest

from repro.config import SUMMIT, fahrenheit_to_celsius
from repro.cooling import CentralEnergyPlant, Weather
from repro.cooling.weather import SECONDS_PER_DAY, SECONDS_PER_YEAR


@pytest.fixture(scope="module")
def plant():
    return CentralEnergyPlant(SUMMIT, Weather(0))


class TestTrimFraction:
    def test_cold_no_trim(self, plant):
        assert plant.required_trim_fraction(np.array([5.0]))[0] == 0.0

    def test_hot_full_trim(self, plant):
        assert plant.required_trim_fraction(np.array([25.0]))[0] == 1.0

    def test_monotonic(self, plant):
        wb = np.linspace(0, 30, 100)
        assert np.all(np.diff(plant.required_trim_fraction(wb)) >= 0)


class TestSimulate:
    def test_steady_state_balance(self, plant):
        t = np.arange(0, 4 * 3600.0, 10.0)
        st = plant.simulate(t, np.full_like(t, 6e6))
        # after spin-up, capacity matches load: return temp steady
        tail = st.mtw_return_c[-100:]
        assert tail.std() < 0.05
        assert st.pue[-1] > 1.0

    def test_return_above_supply(self, plant):
        t = np.arange(0, 3600.0, 10.0)
        st = plant.simulate(t, np.full_like(t, 8e6))
        assert np.all(st.mtw_return_c >= st.mtw_supply_c - 1e-9)

    def test_return_temp_scales_with_load(self, plant):
        t = np.arange(0, 2 * 3600.0, 10.0)
        lo = plant.simulate(t, np.full_like(t, 3e6)).mtw_return_c[-1]
        hi = plant.simulate(t, np.full_like(t, 12e6)).mtw_return_c[-1]
        assert hi > lo + 5.0

    def test_full_load_return_near_100f(self, plant):
        t = np.arange(0, 2 * 3600.0, 10.0)
        st = plant.simulate(t, np.full_like(t, 13e6))
        ret_f = st.mtw_return_c[-1] * 9 / 5 + 32
        assert 95.0 < ret_f < 110.0

    def test_staging_lag_about_a_minute(self, plant):
        """Section 5: ~1 minute before tons of refrigeration respond."""
        t = np.arange(0, 1800.0, 10.0)
        power = np.where(t < 600, 3e6, 9e6)
        st = plant.simulate(t, power)
        tons = st.tower_tons + st.chiller_tons
        base = tons[55]
        step = int(600 / 10)
        # response has NOT moved much 30 s after the edge
        assert tons[step + 3] - base < 0.3 * (tons[-1] - base)
        # but clearly has 3 minutes after
        assert tons[step + 18] - base > 0.5 * (tons[-1] - base)

    def test_destaging_slower_than_staging(self, plant):
        t = np.arange(0, 7200.0, 10.0)
        up = np.where(t < 3600, 3e6, 9e6)
        down = np.where(t < 3600, 9e6, 3e6)
        span = 6e6
        st_up = plant.simulate(t, up)
        st_dn = plant.simulate(t, down)
        tons_up = st_up.tower_tons + st_up.chiller_tons
        tons_dn = st_dn.tower_tons + st_dn.chiller_tons
        k = int(3600 / 10) + 30  # 5 minutes after the edge

        def progress(tons, start, end):
            return abs(tons[k] - tons[start]) / max(abs(tons[end] - tons[start]), 1e-9)

        assert progress(tons_up, int(3600 / 10) - 1, -1) > progress(
            tons_dn, int(3600 / 10) - 1, -1
        ) + 0.2

    def test_pue_inverse_to_power(self, plant):
        """Figures 11-12: PUE is inversely proportional to IT power."""
        t = np.arange(0, 3600.0, 10.0)
        lo = plant.simulate(t, np.full_like(t, 3e6)).pue[-1]
        hi = plant.simulate(t, np.full_like(t, 10e6)).pue[-1]
        assert hi < lo

    def test_forced_chillers_raise_pue(self, plant):
        """The February maintenance (100% chilled water) -> PUE ~1.3."""
        t = np.arange(30 * SECONDS_PER_DAY, 30 * SECONDS_PER_DAY + 86400.0, 60.0)
        it = np.full_like(t, 5.5e6)
        free = plant.simulate(t, it)
        forced = plant.simulate(t, it, chiller_forced=np.ones_like(t))
        assert forced.pue.mean() > free.pue.mean() + 0.05
        assert 1.2 < forced.pue.mean() < 1.4

    def test_annual_pue_calibration(self, plant):
        t = np.arange(0, SECONDS_PER_YEAR, 600.0)
        st = plant.simulate(t, np.full_like(t, 5.5e6))
        w = Weather(0)
        summer = w.summer_mask(t)
        assert 1.08 < st.pue.mean() < 1.16          # paper: 1.11
        assert 1.17 < st.pue[summer].mean() < 1.27  # paper: 1.22
        active = (st.chiller_tons > 0).mean()
        assert 0.12 < active < 0.32                 # paper: ~20% of the year

    def test_supply_setpoint_honored(self, plant):
        t = np.arange(0, 86400.0, 60.0)
        st = plant.simulate(t, np.full_like(t, 5e6))
        setp = fahrenheit_to_celsius(70.0)
        assert np.all(np.abs(st.mtw_supply_c - setp) < 4.5)

    def test_mismatched_shapes(self, plant):
        with pytest.raises(ValueError):
            plant.simulate(np.arange(10.0), np.zeros(5))

    def test_uneven_times_rejected(self, plant):
        t = np.array([0.0, 1.0, 5.0])
        with pytest.raises(ValueError, match="evenly"):
            plant.simulate(t, np.zeros(3))

    def test_to_columns(self, plant):
        t = np.arange(0, 600.0, 10.0)
        st = plant.simulate(t, np.full_like(t, 5e6))
        cols = st.to_columns()
        assert set(cols) >= {"timestamp", "mtwst", "mtwrt", "pue"}

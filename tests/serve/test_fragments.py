"""The fragment cache: task classification, cross-query reuse, and the
bit-identity battery.

The load-bearing property: every answer the fragment-cached service gives
is **bit-identical** to the direct plan execution and to the batch
pipeline — for random overlapping query sequences, with the cache on or
off, and across a concurrent ``compact()`` (generation-carrying fragment
keys must make stale reuse impossible).
"""

import asyncio

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frame.table import Table
from repro.parallel.partition import PartitionedDataset
from repro.pipeline import Pipeline, PipelineConfig
from repro.serve import (
    FragmentCache,
    Query,
    QueryService,
    ServiceConfig,
    plan_query,
)

from .conftest import SHARD_S, SPEC


def run(coro):
    return asyncio.run(coro)


def make_service(dataset, **kw):
    cfg = dict(max_inflight=16, max_queue=32, tenant_inflight=32, workers=2)
    cfg.update(kw)
    return QueryService(dataset, ServiceConfig(**cfg))


async def answer(service, query, tenant="default"):
    resp = await service.query(query, tenant=tenant)
    assert resp["status"] == "ok", resp
    return resp


class TestFragmentCacheUnit:
    def _table(self, n=64):
        return Table({"x": np.arange(n, dtype=np.float64)})

    def test_miss_then_hit(self):
        cache = FragmentCache(1 << 20)
        assert cache.get("k") is None
        cache.put("k", self._table())
        assert cache.get("k") == self._table()
        assert cache.hits == 1 and cache.misses == 1

    def test_byte_cap_evicts_lru(self):
        one = self._table().nbytes()
        cache = FragmentCache(one * 2)
        cache.put("a", self._table())
        cache.put("b", self._table())
        cache.get("a")  # refresh: b becomes LRU
        cache.put("c", self._table())
        assert cache.get("b") is None and cache.get("a") is not None
        assert cache.evictions == 1

    def test_clear_resets_entries_not_counters(self):
        cache = FragmentCache(1 << 20)
        cache.put("a", self._table())
        cache.get("a")
        assert cache.clear() == 1
        assert cache.n_entries == 0 and cache.n_bytes == 0
        assert cache.hits == 1


class TestTaskClassification:
    def test_full_coverage_tasks_are_fragments(self, dataset):
        plan = plan_query(Query(t_begin=0.0, t_end=SPEC.horizon_s), dataset)
        tasks = plan.tasks()
        assert [t.coverage for t in tasks] == ["full"] * len(plan.shards)
        assert all(t.fragment_key for t in tasks)
        # canonical bounds: a full task reads everything
        assert all(np.isinf(t.lo) and np.isinf(t.hi) for t in tasks)

    def test_aligned_edges_slice_fragments(self, dataset):
        # 60 and 1260 sit on the width-10 grid mid-shard
        plan = plan_query(Query(t_begin=60.0, t_end=1260.0), dataset)
        kinds = [t.coverage for t in plan.tasks()]
        assert kinds[0] == "aligned" and kinds[-1] == "aligned"
        assert all(k == "full" for k in kinds[1:-1])

    def test_unaligned_edges_are_uncached_partials(self, dataset):
        plan = plan_query(Query(t_begin=97.0, t_end=1234.5), dataset)
        tasks = plan.tasks()
        assert tasks[0].coverage == "partial"
        assert tasks[-1].coverage == "partial"
        assert tasks[0].fragment_key is None

    def test_overlapping_queries_share_fragment_keys(self, dataset):
        a = plan_query(Query(t_begin=0.0, t_end=1500.0), dataset)
        b = plan_query(Query(t_begin=300.0, t_end=SPEC.horizon_s), dataset)
        keys_a = {t.index: t.fragment_key for t in a.tasks()
                  if t.coverage == "full"}
        keys_b = {t.index: t.fragment_key for t in b.tasks()
                  if t.coverage == "full"}
        shared = set(keys_a) & set(keys_b)
        assert shared, "overlapping full-coverage shards expected"
        assert all(keys_a[i] == keys_b[i] for i in shared)

    def test_kernel_params_split_fragment_keys(self, dataset):
        full = Query(t_begin=0.0, t_end=SPEC.horizon_s)
        base = plan_query(full, dataset)
        for other in (
            Query(t_begin=0.0, t_end=SPEC.horizon_s, width=30.0),
            Query(t_begin=0.0, t_end=SPEC.horizon_s, level="node"),
            Query(t_begin=0.0, t_end=SPEC.horizon_s, nodes=(0, 1)),
        ):
            plan = plan_query(other, dataset)
            assert plan.fragment_key(plan.shards[0]) != base.fragment_key(
                base.shards[0]
            )

    def test_raw_level_is_one_merged_task(self, dataset):
        plan = plan_query(Query(t_begin=0.0, t_end=900.0, level="raw"),
                          dataset)
        tasks = plan.tasks()
        assert len(tasks) == 1 and tasks[0].coverage == "raw"
        assert tasks[0].fragment_key is None

    def test_aligned_slice_is_bit_identical(self, dataset):
        # the property the whole cache rests on: slice-of-full-fragment
        # == compute-of-slice for grid-aligned bounds
        plan = plan_query(Query(t_begin=60.0, t_end=1260.0), dataset)
        for task in plan.tasks():
            if task.coverage != "aligned":
                continue
            direct = plan.run_task(task)
            sliced = plan.slice_fragment(
                plan.run_fragment(task.index), task.lo, task.hi
            )
            assert direct == sliced


class TestServiceEquivalence:
    OVERLAPPING = [
        Query(t_begin=0.0, t_end=1800.0),
        Query(t_begin=60.0, t_end=1260.0),
        Query(t_begin=90.0, t_end=1290.0),
        Query(t_begin=97.0, t_end=1234.5),
        Query(t_begin=60.0, t_end=1260.0, level="node"),
        Query(t_begin=60.0, t_end=660.0, level="raw"),
        Query(t_begin=0.0, t_end=1800.0, derived="pue"),
        Query(t_begin=120.0, t_end=1320.0, nodes=(0, 1, 2, 3)),
        Query(t_begin=120.0, t_end=1320.0, width=30.0),
    ]

    def test_sequence_matches_plan_and_fragment_off(self, dataset):
        svc_on = make_service(dataset, fragment_cache=True)
        svc_off = make_service(dataset, fragment_cache=False)

        async def main():
            for q in self.OVERLAPPING:
                on = await answer(svc_on, q)
                off = await answer(svc_off, q)
                ref = plan_query(q, dataset).execute()
                assert on["table"] == off["table"] == ref, q

        try:
            run(main())
            assert svc_on.stats.frag_hits > 0, "overlap never reused"
            assert svc_off.stats.frag_hits == 0
            assert svc_off.fragments.n_entries == 0
        finally:
            svc_on.close()
            svc_off.close()

    def test_full_range_matches_pipeline(self, dataset):
        svc = make_service(dataset)
        try:
            resp = run(answer(
                svc, Query(t_begin=0.0, t_end=SPEC.horizon_s)
            ))
        finally:
            svc.close()
        pipe = Pipeline(SPEC, PipelineConfig(backend="serial"))
        ref = pipe.telemetry_series(
            dataset, value="input_power", width=10.0,
            t_begin=0.0, t_end=SPEC.horizon_s,
        )
        assert resp["table"] == ref

    def test_concurrent_overlap_shares_flights(self, dataset):
        """8 concurrent overlapping queries: every distinct fragment is
        computed exactly once between them (hit or shared, never twice)."""
        svc = make_service(dataset, fragment_cache=True)
        queries = [
            Query(t_begin=60.0 * i, t_end=60.0 * i + 900.0)
            for i in range(8)
        ]

        async def main():
            return await asyncio.gather(
                *(answer(svc, q, tenant=f"dash{i}")
                  for i, q in enumerate(queries))
            )

        try:
            resps = run(main())
            for q, r in zip(queries, resps):
                assert r["table"] == plan_query(q, dataset).execute()
            computed = svc.fragments.n_entries
            keys = set()
            for q in queries:
                plan = plan_query(q, dataset)
                keys |= {t.fragment_key for t in plan.tasks()
                         if t.fragment_key}
            assert computed == len(keys)
            reused = svc.stats.frag_hits + svc.stats.frag_shared
            assert reused == sum(
                len([t for t in plan_query(q, dataset).tasks()
                     if t.fragment_key])
                for q in queries
            ) - len(keys)
        finally:
            svc.close()

    def test_counters_and_snapshot(self, dataset):
        svc = make_service(dataset, fragment_cache=True)

        async def main():
            await answer(svc, Query(t_begin=60.0, t_end=1260.0), "a")
            await answer(svc, Query(t_begin=90.0, t_end=1290.0), "a")

        try:
            run(main())
            snap = svc.snapshot()
        finally:
            svc.close()
        frag = snap["fragment_cache"]
        assert frag["enabled"] and frag["entries"] > 0
        assert snap["frag_hits"] > 0 and snap["frag_misses"] > 0
        assert snap["tasks_aligned"] >= 2
        assert 0.0 < snap["partial_coverage_ratio"] < 1.0
        assert snap["fanout_mean"] > 0
        assert snap["tenants"]["a"]["frag_hits"] > 0
        assert snap["tenants"]["a"]["shards_scanned"] > 0
        assert "fragments hit / shared / computed" in svc.report()


def _query_strategy():
    widths = st.sampled_from([5.0, 10.0, 30.0])
    grid = st.integers(min_value=0, max_value=int(SPEC.horizon_s / 10.0))

    @st.composite
    def one(draw):
        width = draw(widths)
        if draw(st.booleans()):  # grid-aligned bounds
            lo = draw(grid) * 10.0
            hi = draw(grid) * 10.0
        else:
            lo = draw(st.floats(0.0, SPEC.horizon_s, allow_nan=False))
            hi = draw(st.floats(0.0, SPEC.horizon_s, allow_nan=False))
        lo, hi = min(lo, hi), max(lo, hi)
        if lo == hi:
            hi = lo + width
        level = draw(st.sampled_from(
            ["cluster", "cluster", "cluster", "node", "raw"]
        ))
        nodes = draw(st.one_of(st.none(), st.just((0, 1, 2))))
        return Query(
            t_begin=lo, t_end=hi, width=width, level=level, nodes=nodes,
            derived="pue" if level == "cluster" and draw(st.booleans())
            else None,
        )

    return st.lists(one(), min_size=2, max_size=6)


class TestPropertyBattery:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(queries=_query_strategy())
    def test_random_overlaps_bit_identical(self, dataset, queries):
        """Random overlapping sequences: fragment-cached service ==
        fragment-off service == direct plan execution, bit-identical."""
        svc_on = make_service(dataset, fragment_cache=True)
        svc_off = make_service(dataset, fragment_cache=False)

        async def main():
            for q in queries:
                on = await answer(svc_on, q)
                off = await answer(svc_off, q)
                ref = plan_query(q, dataset).execute()
                assert on["table"] == off["table"] == ref, q

        try:
            run(main())
        finally:
            svc_on.close()
            svc_off.close()


@pytest.fixture()
def small_dataset(telemetry, tmp_path):
    """A private, compactable archive (the session dataset is read-only)."""
    from repro.datasets.store import write_partitioned_series

    return write_partitioned_series(
        telemetry, tmp_path, "telemetry", day_s=SHARD_S / 2
    )


class TestCompaction:
    QUERIES = [
        Query(t_begin=0.0, t_end=1800.0),
        Query(t_begin=60.0, t_end=1260.0),
        Query(t_begin=97.0, t_end=1500.0),
    ]

    def test_compact_rewrites_fragment_keys(self, small_dataset):
        q = self.QUERIES[0]
        before = plan_query(q, small_dataset)
        keys_before = {before.fragment_key(i) for i in before.shards}
        stats = small_dataset.compact(target_rows=small_dataset.n_rows)
        assert stats["rewritten"] > 0
        fresh = PartitionedDataset(small_dataset.root)
        after = plan_query(q, fresh)
        keys_after = {after.fragment_key(i) for i in after.shards}
        # rewritten shards can never alias a pre-compaction fragment
        assert keys_before.isdisjoint(keys_after)

    def test_stale_service_stays_bit_identical_after_compact(
        self, small_dataset
    ):
        refs = [plan_query(q, small_dataset).execute()
                for q in self.QUERIES]
        svc = make_service(small_dataset)

        async def main():
            for q, ref in zip(self.QUERIES, refs):
                assert (await answer(svc, q))["table"] == ref
            # compact under the service's feet (fresh handle: the
            # service's stale manifest is the point of the test)
            PartitionedDataset(small_dataset.root).compact(
                target_rows=small_dataset.n_rows
            )
            svc.cache.clear()  # force re-execution over stale metas
            for q, ref in zip(self.QUERIES, refs):
                assert (await answer(svc, q))["table"] == ref

        try:
            run(main())
        finally:
            svc.close()

    def test_queries_concurrent_with_compact_bit_identical(
        self, small_dataset
    ):
        queries = [
            Query(t_begin=120.0 * i, t_end=120.0 * i + 900.0)
            for i in range(6)
        ]
        refs = [plan_query(q, small_dataset).execute() for q in queries]
        svc = make_service(small_dataset)

        async def main():
            loop = asyncio.get_running_loop()
            compacting = loop.run_in_executor(
                None,
                lambda: PartitionedDataset(small_dataset.root).compact(
                    target_rows=small_dataset.n_rows
                ),
            )
            resps = await asyncio.gather(
                *(answer(svc, q, tenant=f"t{i}")
                  for i, q in enumerate(queries))
            )
            await compacting
            # and again after the swap, through the same (stale) service
            svc.cache.clear()
            again = await asyncio.gather(
                *(answer(svc, q, tenant=f"t{i}")
                  for i, q in enumerate(queries))
            )
            return resps, again

        try:
            resps, again = run(main())
            for ref, r1, r2 in zip(refs, resps, again):
                assert r1["table"] == ref
                assert r2["table"] == ref
        finally:
            svc.close()

    def test_fresh_service_on_compacted_store_matches(self, small_dataset):
        refs = [plan_query(q, small_dataset).execute()
                for q in self.QUERIES]
        PartitionedDataset(small_dataset.root).compact(
            target_rows=small_dataset.n_rows
        )
        fresh = PartitionedDataset(small_dataset.root)
        svc = make_service(fresh)

        async def main():
            for q, ref in zip(self.QUERIES, refs):
                assert (await answer(svc, q))["table"] == ref

        try:
            run(main())
        finally:
            svc.close()

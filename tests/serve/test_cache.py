"""ResultCache LRU/spill behavior and SingleFlight dedup semantics."""

import asyncio

import numpy as np
import pytest

from repro.frame.table import Table
from repro.pipeline import ArtifactCache
from repro.serve import ResultCache, SingleFlight


def _table(n=100, fill=1.0):
    return Table({
        "t": np.arange(n, dtype=np.float64),
        "v": np.full(n, fill),
    })


def _key(i: int) -> str:
    return f"{i:02x}" * 32


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        key = _key(1)
        assert cache.get(key) is None
        cache.put(key, _table())
        got = cache.get(key)
        assert got is not None and got == _table()
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_evicts_oldest(self):
        one = _table(100).nbytes()
        cache = ResultCache(max_bytes=int(2.5 * one))
        for i in range(3):
            cache.put(_key(i), _table(100, fill=float(i)))
        assert cache.n_entries == 2
        assert cache.evictions == 1
        assert cache.get(_key(0)) is None      # the oldest went
        assert cache.get(_key(2)) is not None

    def test_get_refreshes_recency(self):
        one = _table(100).nbytes()
        cache = ResultCache(max_bytes=int(2.5 * one))
        cache.put(_key(0), _table(100))
        cache.put(_key(1), _table(100))
        assert cache.get(_key(0)) is not None  # 0 becomes most recent
        cache.put(_key(2), _table(100))        # so 1 is evicted, not 0
        assert cache.get(_key(1)) is None
        assert cache.get(_key(0)) is not None

    def test_newest_survives_even_oversized(self):
        cache = ResultCache(max_bytes=8)       # smaller than any table
        cache.put(_key(0), _table())
        assert cache.n_entries == 1
        assert cache.n_bytes > cache.max_bytes

    def test_overwrite_same_key_updates_bytes(self):
        cache = ResultCache()
        cache.put(_key(0), _table(100))
        before = cache.n_bytes
        cache.put(_key(0), _table(200))
        assert cache.n_entries == 1
        assert cache.n_bytes == 2 * before

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)

    def test_clear_leaves_spill(self, tmp_path):
        spill = ArtifactCache(tmp_path)
        cache = ResultCache(spill=spill)
        cache.put(_key(0), _table())
        assert cache.clear() == 1
        assert cache.n_entries == 0
        assert spill.n_entries == 1

    def test_spill_promotion(self, tmp_path):
        one = _table(100).nbytes()
        spill = ArtifactCache(tmp_path)
        cache = ResultCache(max_bytes=int(1.5 * one), spill=spill)
        cache.put(_key(0), _table(100, fill=3.0))
        cache.put(_key(1), _table(100))        # evicts 0 from memory
        assert _key(0) not in cache._entries
        got = cache.get(_key(0))               # served from disk, promoted
        assert got == _table(100, fill=3.0)
        assert cache.spill_hits == 1
        assert _key(0) in cache._entries


class TestSingleFlight:
    def test_leader_then_followers_share_result(self):
        async def main():
            flight = SingleFlight()
            calls = 0

            async def work():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.01)
                return "answer"

            outs = await asyncio.gather(
                *[flight.run("k", work) for _ in range(5)]
            )
            return calls, outs

        calls, outs = asyncio.run(main())
        assert calls == 1
        assert sorted(led for _, led in outs) == [False] * 4 + [True]
        assert all(v == "answer" for v, _ in outs)

    def test_failure_propagates_to_followers(self):
        async def main():
            flight = SingleFlight()

            async def boom():
                await asyncio.sleep(0.01)
                raise RuntimeError("shard read failed")

            results = await asyncio.gather(
                *[flight.run("k", boom) for _ in range(3)],
                return_exceptions=True,
            )
            return results, flight.n_inflight

        results, inflight = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert inflight == 0  # key released: a retry starts fresh

    def test_key_released_after_resolve(self):
        async def main():
            flight = SingleFlight()

            async def work():
                return 1

            await flight.run("k", work)
            assert flight.n_inflight == 0
            assert flight.leader("k")  # fresh flight
            flight.resolve("k", None)

        asyncio.run(main())

    def test_distinct_keys_run_independently(self):
        async def main():
            flight = SingleFlight()
            ran = []

            def worker(key):
                async def work():
                    ran.append(key)
                    return key
                return work

            outs = await asyncio.gather(
                flight.run("a", worker("a")), flight.run("b", worker("b"))
            )
            return ran, outs

        ran, outs = asyncio.run(main())
        assert sorted(ran) == ["a", "b"]
        assert all(led for _, led in outs)

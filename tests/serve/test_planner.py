"""Planner correctness: pushdown pruning and bit-identity with the batch
pipeline's kernels (the service must be a different *route* to the same
numbers, never a different answer)."""

import numpy as np
import pytest

from repro.core.aggregate import cluster_power_series
from repro.core.coarsen import coarsen_telemetry
from repro.core.pue import pue_series
from repro.pipeline import Pipeline, PipelineConfig
from repro.serve import Query, QueryError, plan_query

from .conftest import SPEC, SHARD_S


def _reference_cluster(telemetry, t0, t1, width=10.0, nodes=None,
                       metric="input_power"):
    """Single-pass ground truth: mask, coarsen, aggregate."""
    t = np.asarray(telemetry["timestamp"], dtype=np.float64)
    sub = telemetry.filter((t >= t0) & (t < t1))
    if nodes is not None:
        sub = sub.filter(np.isin(np.asarray(sub["node"]), nodes))
    coarse = coarsen_telemetry(sub, [metric], width=width, by=("node",),
                               drop_nan=True)
    return cluster_power_series(coarse, value=metric)


class TestBitIdentity:
    def test_cluster_matches_pipeline_fused_path(self, dataset):
        """Acceptance criterion: service plan == Pipeline.telemetry_series
        bit-for-bit over the same archived dataset."""
        out = plan_query(
            Query(t_begin=0.0, t_end=SPEC.horizon_s, width=10.0), dataset
        ).execute()
        pipe = Pipeline(SPEC, PipelineConfig(backend="serial"))
        ref = pipe.telemetry_series(dataset, value="input_power", width=10.0,
                                    t_begin=0.0, t_end=SPEC.horizon_s)
        assert out == ref

    def test_cluster_matches_single_pass(self, dataset, telemetry):
        out = plan_query(
            Query(t_begin=300.0, t_end=1200.0, width=10.0), dataset
        ).execute()
        assert out == _reference_cluster(telemetry, 300.0, 1200.0)

    def test_node_filter_matches_single_pass(self, dataset, telemetry):
        sel = (3, 7, 20)
        out = plan_query(
            Query(t_begin=0.0, t_end=900.0, nodes=sel, width=10.0), dataset
        ).execute()
        ref = _reference_cluster(telemetry, 0.0, 900.0,
                                 nodes=np.asarray(sel))
        assert out == ref

    def test_cabinet_filter_matches_explicit_nodes(self, dataset):
        by_cabinet = plan_query(Query(t_begin=0.0, t_end=600.0,
                                      cabinets=(1,)), dataset).execute()
        by_nodes = plan_query(Query(t_begin=0.0, t_end=600.0,
                                    nodes=tuple(range(18, 36))),
                              dataset).execute()
        assert by_cabinet == by_nodes

    def test_open_range_equals_full_range(self, dataset):
        full = plan_query(Query(), dataset).execute()
        explicit = plan_query(
            Query(t_begin=0.0, t_end=SPEC.horizon_s + 10.0), dataset
        ).execute()
        assert full == explicit


class TestLevels:
    def test_node_level_multi_metric(self, dataset, telemetry):
        q = Query(t_begin=0.0, t_end=600.0, level="node",
                  metrics=("input_power", "gpu_power_total"), width=10.0)
        out = plan_query(q, dataset).execute()
        t = np.asarray(telemetry["timestamp"], dtype=np.float64)
        sub = telemetry.filter((t >= 0.0) & (t < 600.0))
        ref = coarsen_telemetry(
            sub, ["input_power", "gpu_power_total"], width=10.0,
            by=("node",), drop_nan=True,
        ).sort(["node", "timestamp"])
        assert out == ref

    def test_raw_level_is_projected_slice(self, dataset, telemetry):
        q = Query(t_begin=100.0, t_end=160.0, nodes=(2, 9), level="raw")
        out = plan_query(q, dataset).execute()
        t = np.asarray(telemetry["timestamp"], dtype=np.float64)
        ref = telemetry.filter((t >= 100.0) & (t < 160.0))
        ref = ref.filter(np.isin(np.asarray(ref["node"]), [2, 9]))
        ref = ref.select(["node", "timestamp", "input_power"])
        assert out.n_rows == ref.n_rows
        for c in out.columns:
            assert np.array_equal(np.sort(np.asarray(out[c])),
                                  np.sort(np.asarray(ref[c]))), c

    def test_derived_pue_columns(self, dataset):
        q = Query(t_begin=0.0, t_end=600.0, derived="pue",
                  pue_overhead=0.08)
        out = plan_query(q, dataset).execute()
        assert "pue" in out
        it = np.asarray(out["sum_inp"], dtype=np.float64)
        assert np.array_equal(np.asarray(out["pue"]),
                              pue_series(it, 0.08 * it))


class TestPushdown:
    def test_zone_map_shard_pruning(self, dataset):
        plan = plan_query(Query(t_begin=0.0, t_end=SHARD_S), dataset)
        assert len(plan.shards) == 1
        assert plan.n_shards_pruned == dataset.n_partitions - 1
        assert plan.rows_in < dataset.n_rows

    def test_projection_is_minimal(self, dataset):
        plan = plan_query(Query(metrics=("gpu_power_total",)), dataset)
        assert plan.projection == ["node", "timestamp", "gpu_power_total"]

    def test_empty_range_has_result_schema(self, dataset):
        out = plan_query(
            Query(t_begin=1e9, t_end=2e9, derived="pue"), dataset
        ).execute()
        assert out.n_rows == 0
        assert out.columns == ["timestamp", "count_inp", "sum_inp",
                               "mean_inp", "max_inp", "pue"]

    def test_empty_node_level_schema(self, dataset):
        out = plan_query(
            Query(t_begin=1e9, t_end=2e9, level="node"), dataset
        ).execute()
        assert out.n_rows == 0
        assert "input_power_mean" in out.columns


class TestPlanErrors:
    def test_unknown_metric(self, dataset):
        with pytest.raises(QueryError, match="no columns"):
            plan_query(Query(metrics=("warp_core_power",)), dataset)

    def test_unknown_time_column(self, dataset):
        with pytest.raises(QueryError):
            plan_query(Query(time="arrival"), dataset)

    def test_empty_dataset(self, tmp_path):
        from repro.parallel.partition import PartitionedDataset

        empty = PartitionedDataset.create(tmp_path / "empty", "empty")
        with pytest.raises(QueryError, match="empty"):
            plan_query(Query(), empty)

    def test_invalid_query_rejected_at_planning(self, dataset):
        with pytest.raises(QueryError):
            plan_query(Query(level="warp"), dataset)

"""Shared fixtures for the query-service tests: one small twin's raw
telemetry archived as a partitioned dataset (session-scoped — simulation
and archival are the expensive part; tests treat the dataset as
read-only)."""

import pytest

from repro.datasets import SimulationSpec, simulate_twin
from repro.datasets.store import write_partitioned_series

SPEC = SimulationSpec(n_nodes=36, n_jobs=120, horizon_s=1800.0, seed=7)
SHARD_S = 300.0


@pytest.fixture(scope="session")
def serve_twin():
    return simulate_twin(SPEC)


@pytest.fixture(scope="session")
def telemetry(serve_twin):
    arrays = serve_twin.builder.build(0.0, SPEC.horizon_s, 1.0)
    return serve_twin.sampler().sample(arrays)


@pytest.fixture(scope="session")
def dataset(telemetry, tmp_path_factory):
    root = tmp_path_factory.mktemp("serve_ds")
    return write_partitioned_series(telemetry, root, "telemetry",
                                    day_s=SHARD_S)

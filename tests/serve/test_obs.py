"""Observability hooks of the query service: the slow-query NDJSON log,
the ``obs`` block in ``snapshot()``, and the span tree a traced query
leaves behind."""

import asyncio
import json

import pytest

from repro.obs import trace
from repro.obs.export import validate_spans
from repro.serve import Query, QueryService, ServiceConfig


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def logged_service(dataset, tmp_path):
    svc = QueryService(dataset, ServiceConfig(
        max_inflight=2, max_queue=2, tenant_inflight=2, workers=2,
        slow_query_s=0.0, slow_query_log=tmp_path / "slow.ndjson",
    ))
    yield svc
    svc.close()


class TestSlowQueryLog:
    def test_every_query_logged_at_zero_threshold(self, logged_service):
        async def main():
            q = Query(t_begin=0.0, t_end=900.0)
            return await logged_service.query(q), \
                await logged_service.query(q, tenant="other")

        cold, warm = run(main())
        assert (cold["cache"], warm["cache"]) == ("miss", "hit")

        log_text = open(logged_service.slow_log.path).read()
        records = [json.loads(line) for line in log_text.splitlines()]
        assert [r["cache"] for r in records] == ["miss", "hit"]
        fingerprints = {r["fingerprint"] for r in records}
        assert len(fingerprints) == 1  # same query both times
        for rec in records:
            assert rec["event"] == "slow_query"
            assert rec["rows"] == len(cold["table"]["timestamp"])
            assert rec["elapsed_s"] >= 0.0
        # only the executed query carries the per-shard task breakdown
        assert records[0]["tasks"] and all(
            set(t) == {"shard", "coverage", "source", "s"}
            for t in records[0]["tasks"]
        )
        assert records[1]["tasks"] is None

    def test_threshold_filters_fast_queries(self, dataset, tmp_path):
        svc = QueryService(dataset, ServiceConfig(
            workers=2, tenant_inflight=2,
            slow_query_s=3600.0, slow_query_log=tmp_path / "slow.ndjson",
        ))
        try:
            resp = run(svc.query(Query(t_begin=0.0, t_end=600.0)))
            assert resp["status"] == "ok"
            assert svc.slow_log.written == 0
        finally:
            svc.close()


class TestSnapshotObs:
    def test_obs_block_shape(self, logged_service):
        run(logged_service.query(Query(t_begin=0.0, t_end=600.0)))
        obs = logged_service.snapshot()["obs"]
        assert set(obs) == {"tracing", "trace_file", "slow_query_s",
                            "slow_query_log", "slow_queries"}
        assert obs["tracing"] is False
        assert obs["slow_query_s"] == 0.0
        assert obs["slow_queries"] == 1

    def test_obs_block_without_slow_log(self, dataset):
        svc = QueryService(dataset, ServiceConfig(workers=2,
                                                  tenant_inflight=2))
        try:
            obs = svc.snapshot()["obs"]
            assert obs["slow_query_log"] is None
            assert obs["slow_queries"] == 0
        finally:
            svc.close()


class TestTracedQuery:
    def test_cold_query_span_tree(self, dataset, tmp_path):
        svc = QueryService(dataset, ServiceConfig(workers=2,
                                                  tenant_inflight=2))
        trace.enable(tmp_path / "trace.jsonl")
        try:
            resp = run(svc.query(Query(t_begin=0.0, t_end=900.0)))
            assert (resp["status"], resp["cache"]) == ("ok", "miss")
        finally:
            trace.disable()
            svc.close()

        records = [json.loads(line) for line in
                   (tmp_path / "trace.jsonl").read_text().splitlines()]
        forest = validate_spans(records)
        names = {r["name"] for r in records}
        assert {"serve.query", "serve.admit", "serve.plan",
                "serve.task", "serve.task.exec",
                "serve.merge"} <= names

        edges = set()

        def walk(node):
            for child in node.children:
                edges.add((node.name, child.name))
                walk(child)

        for root in forest:
            walk(root)
        assert ("serve.query", "serve.plan") in edges
        assert ("serve.task", "serve.task.exec") in edges
        assert ("serve.query", "serve.merge") in edges

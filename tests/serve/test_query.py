"""Query canonicalization, validation, and fingerprint identity."""

import pytest

from repro.serve import DERIVED, LEVELS, Query, QueryError


class TestCanonicalization:
    def test_nodes_sorted_deduped(self):
        q = Query(nodes=[5, 1, 5, 3])
        assert q.nodes == (1, 3, 5)

    def test_cabinets_sorted_deduped(self):
        q = Query(cabinets=(2, 0, 2))
        assert q.cabinets == (0, 2)

    def test_metrics_deduped_order_preserved(self):
        q = Query(metrics=["gpu_power_total", "input_power",
                           "gpu_power_total"])
        assert q.metrics == ("gpu_power_total", "input_power")

    def test_metrics_string_rejected(self):
        with pytest.raises(QueryError):
            Query(metrics="input_power")

    def test_floats_coerced(self):
        q = Query(t_begin=0, t_end=60, width=5)
        assert isinstance(q.t_begin, float)
        assert isinstance(q.t_end, float)
        assert isinstance(q.width, float)

    def test_negative_node_rejected(self):
        with pytest.raises(QueryError):
            Query(nodes=(-1, 2))

    def test_non_integer_nodes_rejected(self):
        with pytest.raises(QueryError):
            Query(nodes=("cab-3",))


class TestValidation:
    def test_default_query_valid(self):
        Query().validate()

    @pytest.mark.parametrize("bad", [
        dict(level="warp"),
        dict(metrics=()),
        dict(width=0.0),
        dict(width=-1.0),
        dict(t_begin=10.0, t_end=10.0),
        dict(t_begin=10.0, t_end=5.0),
        dict(metrics=("a", "b")),                      # cluster: one metric
        dict(derived="entropy"),
        dict(derived="pue", level="node",
             metrics=("input_power",)),
        dict(derived="pue", pue_overhead=-0.5),
    ])
    def test_rejects(self, bad):
        kw = dict(metrics=("input_power",))
        kw.update(bad)
        with pytest.raises(QueryError):
            Query(**kw).validate()

    def test_node_level_multi_metric_ok(self):
        Query(level="node", metrics=("input_power", "gpu_power_total")
              ).validate()

    def test_levels_and_derived_exported(self):
        assert "cluster" in LEVELS
        assert "pue" in DERIVED


class TestNodeSelection:
    def test_none_means_all(self):
        assert Query().node_selection() is None

    def test_cabinet_expands(self):
        q = Query(cabinets=(1,))
        assert q.node_selection(nodes_per_cabinet=4) == (4, 5, 6, 7)

    def test_union_of_nodes_and_cabinets(self):
        q = Query(nodes=(0, 5), cabinets=(1,))
        assert q.node_selection(nodes_per_cabinet=4) == (0, 4, 5, 6, 7)


class TestFingerprint:
    def test_spelling_invariant(self):
        a = Query(nodes=[3, 1, 1], t_begin=0, t_end=60)
        b = Query(nodes=(1, 3), t_begin=0.0, t_end=60.0)
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_selection(self):
        base = Query(t_begin=0.0, t_end=60.0)
        assert base.fingerprint() != Query(t_begin=0.0, t_end=120.0
                                           ).fingerprint()
        assert base.fingerprint() != Query(t_begin=0.0, t_end=60.0,
                                           nodes=(1,)).fingerprint()
        assert base.fingerprint() != Query(t_begin=0.0, t_end=60.0,
                                           level="node").fingerprint()
        assert base.fingerprint() != Query(t_begin=0.0, t_end=60.0,
                                           derived="pue").fingerprint()

    def test_is_hex_sha256(self):
        fp = Query().fingerprint()
        assert len(fp) == 64
        assert set(fp) <= set("0123456789abcdef")


class TestWireForm:
    def test_round_trip(self):
        q = Query(t_begin=0.0, t_end=600.0, nodes=(2, 7), width=5.0,
                  level="node", metrics=("input_power", "p0_power"))
        assert Query.from_dict(q.to_dict()) == q

    def test_unknown_field_rejected(self):
        with pytest.raises(QueryError, match="levle"):
            Query.from_dict({"levle": "cluster"})

    def test_non_dict_rejected(self):
        with pytest.raises(QueryError):
            Query.from_dict([1, 2])

    def test_malformed_value_becomes_query_error(self):
        with pytest.raises(QueryError):
            Query.from_dict({"width": "wide"})

    def test_with_range(self):
        q = Query(t_begin=0.0, t_end=600.0)
        r = q.with_range(100.0, 200.0)
        assert (r.t_begin, r.t_end) == (100.0, 200.0)
        assert r.metrics == q.metrics

"""Admission control: bounded concurrency, bounded queue, tenant quotas.

All decisions are synchronous on the event loop, so these tests drive
deterministic interleavings with bare coroutines — no sleeps for
correctness, only to let queued waiters park.
"""

import asyncio

import pytest

from repro.serve import Admission, RejectedError


def run(coro):
    return asyncio.run(coro)


class TestFastPath:
    def test_admit_below_bound_is_immediate(self):
        async def main():
            adm = Admission(max_inflight=2, max_queue=2)
            assert await adm.admit("a") == 0.0
            assert await adm.admit("a") == 0.0
            assert adm.running == 2
            adm.release("a")
            adm.release("a")
            assert adm.running == 0

        run(main())

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Admission(max_inflight=0)
        with pytest.raises(ValueError):
            Admission(max_queue=-1)
        with pytest.raises(ValueError):
            Admission(tenant_inflight=0)


class TestQueueing:
    def test_waiter_parks_then_wakes_on_release(self):
        async def main():
            adm = Admission(max_inflight=1, max_queue=4)
            await adm.admit("a")

            async def queued():
                return await adm.admit("b")

            task = asyncio.create_task(queued())
            await asyncio.sleep(0.01)
            assert adm.waiting == 1
            assert not task.done()
            adm.release("a")
            waited = await task
            assert waited > 0.0
            assert (adm.running, adm.waiting) == (1, 0)
            adm.release("b")

        run(main())

    def test_fresh_arrival_never_jumps_queue(self):
        async def main():
            adm = Admission(max_inflight=1, max_queue=4)
            await adm.admit("a")
            first = asyncio.create_task(adm.admit("b"))
            await asyncio.sleep(0.01)
            # a slot opens, but "b" holds the head of the queue: a fresh
            # arrival must park behind it, not race it
            adm.release("a")
            second = asyncio.create_task(adm.admit("c"))
            await asyncio.sleep(0.01)
            assert first.done() and not second.done()
            adm.release("b")
            await second
            adm.release("c")

        run(main())

    def test_cancelled_waiter_releases_queue_slot(self):
        async def main():
            adm = Admission(max_inflight=1, max_queue=1)
            await adm.admit("a")
            task = asyncio.create_task(adm.admit("b"))
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert adm.waiting == 0
            assert adm.tenant("b").held == 0
            adm.release("a")

        run(main())


class TestRejection:
    def test_capacity_rejection_beyond_queue(self):
        async def main():
            adm = Admission(max_inflight=1, max_queue=1)
            await adm.admit("a")
            waiter = asyncio.create_task(adm.admit("b"))
            await asyncio.sleep(0.01)
            with pytest.raises(RejectedError, match="capacity"):
                await adm.admit("c")
            assert adm.rejected_capacity == 1
            adm.release("a")
            await waiter
            adm.release("b")

        run(main())

    def test_tenant_quota_counts_running_plus_queued(self):
        async def main():
            adm = Admission(max_inflight=1, max_queue=8, tenant_inflight=2)
            await adm.admit("t")                       # running
            waiter = asyncio.create_task(adm.admit("t"))  # queued
            await asyncio.sleep(0.01)
            with pytest.raises(RejectedError, match="quota"):
                await adm.admit("t")                   # held == 2 == quota
            assert adm.rejected_quota == 1
            # another tenant is unaffected by t's quota
            other = asyncio.create_task(adm.admit("u"))
            await asyncio.sleep(0.01)
            assert adm.waiting == 2
            adm.release("t")
            await waiter
            adm.release("t")
            await other
            adm.release("u")

        run(main())

    def test_rejection_leaves_counts_consistent(self):
        async def main():
            adm = Admission(max_inflight=1, max_queue=0)
            await adm.admit("a")
            with pytest.raises(RejectedError):
                await adm.admit("b")
            assert adm.tenant("b").held == 0
            adm.release("a")
            # the rejected tenant can come back immediately
            await adm.admit("b")
            adm.release("b")

        run(main())

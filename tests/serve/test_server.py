"""End-to-end service behavior: cache tiers, single-flight sharing,
explicit overload rejection, and the TCP wire protocol."""

import asyncio
import threading
from collections import Counter

import numpy as np
import pytest

from repro.frame.table import Table
from repro.serve import (
    Query,
    QueryClient,
    QueryService,
    ServiceConfig,
    TelemetryServer,
    table_from_wire,
    table_to_wire,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def service(dataset):
    svc = QueryService(dataset, ServiceConfig(max_inflight=2, max_queue=2,
                                              tenant_inflight=2, workers=2))
    yield svc
    svc.close()


class TestQueryFlow:
    def test_miss_then_hit_identical(self, service):
        async def main():
            q = Query(t_begin=0.0, t_end=900.0)
            cold = await service.query(q)
            warm = await service.query(q)
            return cold, warm

        cold, warm = run(main())
        assert (cold["status"], cold["cache"]) == ("ok", "miss")
        assert cold["shards"]["pruned"] > 0
        assert (warm["status"], warm["cache"]) == ("ok", "hit")
        assert warm["table"] == cold["table"]
        assert service.stats.cache_hit_ratio == 0.5

    def test_identical_burst_executes_once(self, service):
        async def main():
            q = Query(t_begin=0.0, t_end=1200.0, width=20.0)
            return await asyncio.gather(
                *[service.query(q, tenant=f"t{i}") for i in range(6)]
            )

        results = run(main())
        kinds = Counter(r["cache"] for r in results)
        assert kinds == {"miss": 1, "shared": 5}
        assert len({id(r["table"]) for r in results}) == 1
        assert service.stats.executed == 1

    def test_malformed_query_is_error_response(self, service):
        resp = run(service.query({"level": "warp"}))
        assert resp["status"] == "error"
        assert "warp" in resp["error"]
        resp = run(service.query({"no_such_knob": 1}))
        assert resp["status"] == "error"

    def test_unanswerable_query_is_error_response(self, service):
        resp = run(service.query(Query(metrics=("flux_capacitor",))))
        assert resp["status"] == "error"
        assert "flux_capacitor" in resp["error"]

    def test_overload_rejects_instead_of_hanging(self, dataset):
        svc = QueryService(dataset, ServiceConfig(max_inflight=1, max_queue=1,
                                                  tenant_inflight=1,
                                                  workers=1))
        try:
            async def main():
                queries = [Query(t_begin=0.0, t_end=1500.0,
                                 width=float(10 + i)) for i in range(8)]
                return await asyncio.gather(
                    *[svc.query(q, tenant=f"t{i}")
                      for i, q in enumerate(queries)]
                )

            results = run(main())
        finally:
            svc.close()
        by_status = Counter(r["status"] for r in results)
        # deterministic: decisions happen synchronously on the loop before
        # any await, so of 8 distinct offered queries exactly 1 runs,
        # 1 queues, 6 are rejected
        assert by_status == {"ok": 2, "rejected": 6}
        queued = [r for r in results if r["status"] == "ok"
                  and r["queued_s"] > 0.0]
        assert len(queued) == 1
        for r in results:
            if r["status"] == "rejected":
                assert "capacity" in r["reason"] or "quota" in r["reason"]

    def test_tenant_quota_enforced(self, dataset):
        svc = QueryService(dataset, ServiceConfig(max_inflight=4, max_queue=8,
                                                  tenant_inflight=1,
                                                  workers=1))
        try:
            async def main():
                queries = [Query(t_begin=0.0, t_end=600.0,
                                 width=float(10 + i)) for i in range(3)]
                return await asyncio.gather(
                    *[svc.query(q, tenant="greedy") for q in queries]
                )

            results = run(main())
        finally:
            svc.close()
        by_status = Counter(r["status"] for r in results)
        assert by_status == {"ok": 1, "rejected": 2}
        snap = svc.snapshot()
        assert snap["rejected_quota"] == 2
        assert snap["tenants"]["greedy"]["rejected"] == 2

    def test_snapshot_shape(self, service):
        run(service.query(Query(t_begin=0.0, t_end=300.0)))
        snap = service.snapshot()
        assert snap["ok"] == 1
        assert snap["result_cache"]["entries"] == 1
        assert snap["dataset"]["partitions"] == service.dataset.n_partitions
        assert "default" in snap["tenants"]
        assert "queries" in service.report()


class TestWireTables:
    def test_round_trip_bit_identical(self):
        t = Table({
            "timestamp": np.arange(5, dtype=np.float64) * 0.1,
            "node": np.arange(5, dtype=np.int64),
            "power": np.array([1.5, np.pi, -0.0, 1e300, 5e-324]),
        })
        back = table_from_wire(table_to_wire(t))
        assert back == t
        for c in t.columns:
            assert back[c].dtype == t[c].dtype

    def test_wire_form_is_plain_json_types(self):
        import json

        t = Table({"v": np.array([1.0, 2.5])})
        encoded = json.dumps(table_to_wire(t))
        assert table_from_wire(json.loads(encoded)) == t


class TestTCP:
    def test_query_stats_ping_over_socket(self, service):
        async def main():
            server = TelemetryServer(service)
            host, port = await server.start()
            out = {}

            def client_side():
                with QueryClient(host, port, tenant="remote") as c:
                    assert c.ping()
                    out["cold"] = c.query(Query(t_begin=0.0, t_end=600.0))
                    out["warm"] = c.query(Query(t_begin=0.0, t_end=600.0))
                    out["bad"] = c.query({"level": "warp"})
                    out["stats"] = c.stats()

            worker = threading.Thread(target=client_side)
            worker.start()
            while worker.is_alive():
                await asyncio.sleep(0.02)
            worker.join()
            await server.stop()
            return out

        out = run(main())
        assert (out["cold"]["status"], out["cold"]["cache"]) == ("ok", "miss")
        assert (out["warm"]["status"], out["warm"]["cache"]) == ("ok", "hit")
        assert out["warm"]["table"] == out["cold"]["table"]
        assert out["bad"]["status"] == "error"
        assert out["stats"]["ok"] == 2
        assert out["stats"]["tenants"]["remote"]["queries"] == 3

    def test_wire_result_matches_in_process(self, service):
        async def main():
            q = Query(t_begin=0.0, t_end=900.0, derived="pue")
            local = await service.query(q)
            server = TelemetryServer(service)
            host, port = await server.start()
            out = {}

            def client_side():
                with QueryClient(host, port) as c:
                    out["resp"] = c.query(q)

            worker = threading.Thread(target=client_side)
            worker.start()
            while worker.is_alive():
                await asyncio.sleep(0.02)
            worker.join()
            await server.stop()
            return local, out["resp"]

        local, remote = run(main())
        assert remote["cache"] == "hit"
        assert remote["table"] == local["table"]

    def test_large_results_encode_off_loop(self, dataset):
        """Big result tables must be wire-encoded on the worker pool, not
        the event loop — and byte-identically to the inline path."""
        def serve_once(svc):
            async def main():
                server = TelemetryServer(svc)
                host, port = await server.start()
                out = {}

                def client_side():
                    with QueryClient(host, port) as c:
                        out["resp"] = c.query(
                            Query(t_begin=0.0, t_end=900.0, level="node")
                        )

                worker = threading.Thread(target=client_side)
                worker.start()
                while worker.is_alive():
                    await asyncio.sleep(0.02)
                worker.join()
                await server.stop()
                return out["resp"]

            try:
                return run(main())
            finally:
                svc.close()

        offloaded = QueryService(dataset, ServiceConfig(
            workers=2, encode_offload_bytes=1,
        ))
        inline = QueryService(dataset, ServiceConfig(
            workers=2, encode_offload_bytes=1 << 30,
        ))
        a = serve_once(offloaded)
        b = serve_once(inline)
        assert offloaded.stats.encode_offloads > 0
        assert inline.stats.encode_offloads == 0
        assert a["status"] == b["status"] == "ok"
        assert a["table"] == b["table"]

    def test_bad_json_line_is_error_not_disconnect(self, service):
        async def main():
            server = TelemetryServer(service)
            host, port = await server.start()
            out = {}

            def client_side():
                with QueryClient(host, port) as c:
                    c._file.write(b"{not json\n")
                    c._file.flush()
                    import json

                    out["err"] = json.loads(c._file.readline())
                    out["after"] = c.ping()

            worker = threading.Thread(target=client_side)
            worker.start()
            while worker.is_alive():
                await asyncio.sleep(0.02)
            worker.join()
            await server.stop()
            return out

        out = run(main())
        assert out["err"]["status"] == "error"
        assert out["after"] is True

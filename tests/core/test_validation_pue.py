"""Unit tests for MSB validation and PUE summaries."""

import numpy as np
import pytest

from repro.core.pue import pue_series, weekly_summary
from repro.core.validation import msb_validation


class TestMsbValidation:
    def make(self, rng, n_msb=3, n_t=500, offset=-5000.0):
        base = 1e6 + 5e4 * np.sin(np.linspace(0, 20, n_t))
        meter = np.stack([base + m * 1e4 for m in range(n_msb)])
        summation = meter + offset + rng.normal(0, 500.0, meter.shape)
        return meter, summation

    def test_mean_diff_recovered(self, rng):
        meter, summ = self.make(rng)
        out = msb_validation(meter, summ)
        assert out["mean_diff_w"] == pytest.approx(-15_000.0, rel=0.05)

    def test_relative_diff(self, rng):
        meter, summ = self.make(rng)
        out = msb_validation(meter, summ)
        assert out["relative_diff"] == pytest.approx(15_000 / 3.03e6, rel=0.1)

    def test_phase_correlation_high(self, rng):
        meter, summ = self.make(rng)
        out = msb_validation(meter, summ)
        assert np.all(out["per_msb"]["phase_corr"] > 0.7)

    def test_amplitude_ratio_near_one(self, rng):
        meter, summ = self.make(rng)
        out = msb_validation(meter, summ)
        assert np.allclose(out["per_msb"]["amplitude_ratio"], 1.0, atol=0.15)

    def test_msb_names_default(self, rng):
        meter, summ = self.make(rng)
        out = msb_validation(meter, summ)
        assert list(out["per_msb"]["msb"]) == ["A", "B", "C"]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            msb_validation(np.zeros((2, 5)), np.zeros((3, 5)))

    def test_diffs_array_returned(self, rng):
        meter, summ = self.make(rng)
        out = msb_validation(meter, summ)
        assert out["diffs"].shape == meter.shape


class TestPue:
    def test_pue_series(self):
        pue = pue_series(np.array([1e6, 2e6]), np.array([1e5, 1e5]))
        assert np.allclose(pue, [1.1, 1.05])

    def test_weekly_summary_rows(self):
        times = np.arange(0, 21 * 86400.0, 3600.0)
        vals = np.sin(times / 1e5) + 2.0
        out = weekly_summary(times, vals)
        assert out.n_rows == 3
        assert np.array_equal(out["week"], [0, 1, 2])
        assert np.all(out["q1"] <= out["median"])
        assert np.all(out["median"] <= out["q3"])

    def test_weekly_extra_max(self):
        times = np.arange(0, 14 * 86400.0, 3600.0)
        vals = np.ones_like(times)
        power = times.copy()
        out = weekly_summary(times, vals, extra_max=power)
        assert out["week_max_extra"][0] < out["week_max_extra"][1]
        assert out["week_max_extra"][1] == times.max()

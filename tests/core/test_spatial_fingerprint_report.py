"""Unit tests for spatial analysis, fingerprinting, and report rendering."""

import numpy as np
import pytest

from repro.config import SUMMIT
from repro.core.fingerprint import (
    kmeans,
    portrait_prediction_error,
    user_portraits,
)
from repro.core.report import (
    fmt_si,
    render_cdf_quantiles,
    render_hist,
    render_series,
    render_table,
    sparkline,
)
from repro.core.spatial import cabinet_temperature_grid, spatial_locality
from repro.machine import Topology


class TestSpatial:
    @pytest.fixture()
    def topo(self):
        return Topology(SUMMIT.scaled(90))

    def test_grid_means(self, topo):
        temps = np.full((90, 6), 40.0)
        temps[:18] = 50.0  # cabinet 0 hotter
        out = cabinet_temperature_grid(topo, temps)
        grid = out["mean"]
        vals = grid[np.isfinite(grid)]
        assert vals.max() == pytest.approx(50.0)
        assert vals.min() == pytest.approx(40.0)

    def test_max_grid(self, topo):
        temps = np.full((90, 6), 40.0)
        temps[3, 2] = 77.0
        out = cabinet_temperature_grid(topo, temps)
        assert np.nanmax(out["max"]) == pytest.approx(77.0)

    def test_not_in_job_flag(self, topo):
        temps = np.full((90, 6), 40.0)
        part = np.ones(90, dtype=bool)
        part[:18] = False  # cabinet 0 not participating
        out = cabinet_temperature_grid(topo, temps, participating=part)
        assert out["not_in_job"].sum() == 1
        assert np.isnan(out["mean"][topo.cabinet_row[0], topo.cabinet_col[0]])

    def test_missing_cabinet_flag(self, topo):
        """The paper's bright-green cabinet: telemetry lost for all nodes."""
        temps = np.full((90, 6), 40.0)
        out = cabinet_temperature_grid(
            topo, temps, missing_nodes=np.arange(18, 36)
        )
        assert out["missing"].sum() == 1

    def test_wrong_node_count(self, topo):
        with pytest.raises(ValueError):
            cabinet_temperature_grid(topo, np.zeros((10, 6)))

    def test_spatial_locality_flat(self):
        g = np.full((4, 5), 40.0)
        g[0, 0] = 40.0
        out = spatial_locality(g)
        assert out["spread_c"] == 0.0

    def test_spatial_locality_row_gradient(self):
        g = np.tile(np.arange(4, dtype=np.float64)[:, None], (1, 5))
        out = spatial_locality(g)
        assert out["row_variance_share"] > 0.9

    def test_spatial_locality_nan_tolerant(self):
        g = np.full((3, 3), 42.0)
        g[1, 1] = np.nan
        g[0, 0] = 44.0
        out = spatial_locality(g)
        assert np.isfinite(out["spread_c"])


class TestKmeans:
    def test_separated_clusters(self, rng):
        a = rng.normal(0, 0.2, (50, 2))
        b = rng.normal(5, 0.2, (50, 2)) + np.array([5, 0])
        x = np.vstack([a, b])
        centers, labels = kmeans(x, 2, seed=1)
        assert len(np.unique(labels[:50])) == 1
        assert len(np.unique(labels[50:])) == 1
        assert labels[0] != labels[-1]

    def test_k_equals_n(self, rng):
        x = rng.normal(size=(5, 3))
        centers, labels = kmeans(x, 5, seed=0)
        assert len(np.unique(labels)) == 5

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(3, 2)), 0)
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(3, 2)), 10)

    def test_deterministic(self, rng):
        x = rng.normal(size=(40, 2))
        c1, l1 = kmeans(x, 3, seed=7)
        c2, l2 = kmeans(x, 3, seed=7)
        assert np.array_equal(l1, l2)


class TestPortraits:
    def test_user_portraits_means(self):
        feats = np.array([[1.0], [3.0], [10.0]])
        users = np.array([1, 1, 2])
        p = user_portraits(feats, users)
        assert p[1][0] == 2.0
        assert p[2][0] == 10.0

    def test_portrait_beats_global_for_user_structure(self, rng):
        """When users have distinct power habits, portraits must win."""
        n = 400
        users = rng.integers(0, 8, n)
        user_level = users * 200.0
        y = user_level + rng.normal(0, 20.0, n)
        fp = {
            "mean_w_per_node": y,
            "user_id": users,
        }
        out = portrait_prediction_error(fp, seed=1)
        assert out["mae_portrait_w"] < out["mae_global_w"]
        assert out["improvement"] > 0.3

    def test_too_few_jobs(self):
        with pytest.raises(ValueError):
            portrait_prediction_error(
                {"mean_w_per_node": np.ones(3), "user_id": np.ones(3)}
            )


class TestReport:
    def test_fmt_si(self):
        assert fmt_si(5_500_000, "W") == "5.50 MW"
        assert fmt_si(1234, "J") == "1.23 kJ"
        assert fmt_si(12.0, "W") == "12.00 W"
        assert fmt_si(float("nan")) == "nan"

    def test_render_table_aligned(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_sparkline_length(self):
        s = sparkline(np.sin(np.linspace(0, 10, 500)), width=40)
        assert len(s) == 40

    def test_sparkline_nan_spaces(self):
        s = sparkline(np.array([1.0, np.nan, 2.0]))
        assert s[1] == " "

    def test_render_series_contains_stats(self):
        out = render_series("power", np.array([1e6, 2e6]), "W")
        assert "1.00 MW" in out and "2.00 MW" in out

    def test_render_hist(self):
        out = render_hist(["a", "b"], [10, 5])
        assert out.count("#") > 0
        lines = out.splitlines()
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_render_cdf(self):
        out = render_cdf_quantiles("walltime", np.arange(100.0), "s")
        assert "p50" in out and "n=100" in out

    def test_render_empty_series(self):
        assert "no data" in render_series("x", np.array([]))


class TestOnlinePredictor:
    def test_prior_only(self):
        from repro.core.fingerprint import OnlinePowerPredictor

        p = OnlinePowerPredictor(prior_mean_w=1500.0)
        assert p.mean() == 1500.0
        assert p.portrait_reliance() == 1.0

    def test_mean_moves_toward_data(self):
        from repro.core.fingerprint import OnlinePowerPredictor

        p = OnlinePowerPredictor(prior_mean_w=1500.0, prior_weight=5.0)
        for _ in range(50):
            p.update(900.0)
        assert 900.0 < p.mean() < 1000.0
        assert p.portrait_reliance() < 0.1

    def test_uncertainty_converges(self, rng):
        from repro.core.fingerprint import OnlinePowerPredictor

        p = OnlinePowerPredictor(prior_mean_w=1000.0)
        u0 = p.uncertainty()
        p.update(rng.normal(1000.0, 50.0, 10))
        u10 = p.uncertainty()
        p.update(rng.normal(1000.0, 50.0, 500))
        u510 = p.uncertainty()
        assert u10 < u0
        assert u510 < u10

    def test_vector_update(self):
        from repro.core.fingerprint import OnlinePowerPredictor

        p = OnlinePowerPredictor(prior_mean_w=0.0, prior_weight=1e-9)
        p.update(np.array([1.0, 2.0, 3.0]))
        assert p.mean() == pytest.approx(2.0, abs=1e-6)

    def test_invalid_prior_weight(self):
        from repro.core.fingerprint import OnlinePowerPredictor

        with pytest.raises(ValueError):
            OnlinePowerPredictor(1000.0, prior_weight=0.0)


class TestRenderGrid:
    def test_shape_and_scale(self):
        from repro.core.report import render_grid

        g = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = render_grid(g, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 4  # title + 2 rows + legend
        assert lines[1].startswith("|") and lines[1].endswith("|")

    def test_nan_renders_space(self):
        from repro.core.report import render_grid

        g = np.array([[1.0, np.nan]])
        out = render_grid(g, legend=False)
        assert out.splitlines()[0][2] == " "

    def test_missing_mask(self):
        from repro.core.report import render_grid

        g = np.array([[1.0, np.nan]])
        mask = np.array([[False, True]])
        out = render_grid(g, missing_mask=mask, legend=False)
        assert "G" in out

    def test_all_nan(self):
        from repro.core.report import render_grid

        assert "no data" in render_grid(np.full((2, 2), np.nan))

"""Unit tests for distribution statistics."""

import numpy as np
import pytest

from repro.core.density import (
    boxplot_stats,
    cdf_at,
    ecdf,
    kde_1d,
    kde_2d,
    modality_count,
    quantiles,
    skewness,
)


class TestEcdf:
    def test_basic(self):
        x, f = ecdf(np.array([3.0, 1.0, 2.0]))
        assert np.array_equal(x, [1, 2, 3])
        assert np.allclose(f, [1 / 3, 2 / 3, 1.0])

    def test_nan_dropped(self):
        x, _ = ecdf(np.array([1.0, np.nan, 2.0]))
        assert len(x) == 2

    def test_cdf_at(self):
        v = np.arange(1, 11, dtype=np.float64)
        assert cdf_at(v, np.array([5.0]))[0] == 0.5
        assert cdf_at(v, np.array([0.0]))[0] == 0.0
        assert cdf_at(v, np.array([100.0]))[0] == 1.0

    def test_cdf_at_empty(self):
        out = cdf_at(np.array([]), np.array([1.0]))
        assert np.isnan(out[0])

    def test_quantiles(self):
        q = quantiles(np.arange(101, dtype=np.float64), (0.2, 0.8))
        assert np.allclose(q, [20.0, 80.0])


class TestBoxplot:
    def test_known_values(self):
        v = np.arange(1, 101, dtype=np.float64)
        st = boxplot_stats(v)
        assert st["median"] == pytest.approx(50.5)
        assert st["q1"] == pytest.approx(25.75)
        assert st["whisker_lo"] == 1.0
        assert st["whisker_hi"] == 100.0
        assert st["n_outliers"] == 0

    def test_outliers_excluded_from_whiskers(self):
        v = np.concatenate([np.arange(1, 101, dtype=np.float64), [10_000.0]])
        st = boxplot_stats(v)
        assert st["whisker_hi"] == 100.0
        assert st["n_outliers"] == 1

    def test_spread_definition(self):
        v = np.arange(1, 101, dtype=np.float64)
        st = boxplot_stats(v)
        assert st["spread"] == st["whisker_hi"] - st["whisker_lo"]

    def test_empty(self):
        st = boxplot_stats(np.array([]))
        assert np.isnan(st["median"])


class TestKde:
    def test_kde_1d_integrates_to_one(self, rng):
        v = rng.normal(0, 1, 500)
        g, d = kde_1d(v, n_grid=512)
        integral = np.trapezoid(d, g)
        assert integral == pytest.approx(1.0, abs=0.05)

    def test_kde_1d_peak_near_mean(self, rng):
        v = rng.normal(10.0, 1.0, 2000)
        g, d = kde_1d(v)
        assert abs(g[np.argmax(d)] - 10.0) < 0.5

    def test_kde_1d_degenerate(self):
        g, d = kde_1d(np.array([1.0, 1.0, 1.0]))
        assert np.all(d == 0.0)

    def test_kde_2d_shape(self, rng):
        x = rng.lognormal(10, 1, 300)
        y = rng.lognormal(15, 1, 300)
        out = kde_2d(x, y, n_grid=32, log_x=True, log_y=True)
        assert out["density"].shape == (32, 32)
        assert out["density"].max() > 0

    def test_kde_2d_correlated_ridge(self, rng):
        x = rng.normal(0, 1, 800)
        y = x + rng.normal(0, 0.1, 800)
        out = kde_2d(x, y, n_grid=48)
        # density along the diagonal beats the anti-diagonal
        d = out["density"]
        diag = np.trace(d)
        anti = np.trace(d[::-1])
        assert diag > 2 * anti

    def test_kde_2d_too_few_points(self):
        out = kde_2d(np.array([1.0]), np.array([2.0]))
        assert np.all(out["density"] == 0)


class TestSkewness:
    def test_symmetric_near_zero(self, rng):
        assert abs(skewness(rng.normal(0, 1, 20_000))) < 0.1

    def test_right_skew_positive(self, rng):
        assert skewness(rng.lognormal(0, 1, 5000)) > 1.0

    def test_too_short(self):
        assert np.isnan(skewness(np.array([1.0, 2.0])))


class TestModality:
    def test_unimodal(self, rng):
        assert modality_count(rng.normal(0, 1, 3000)) == 1

    def test_bimodal(self, rng):
        v = np.concatenate([rng.normal(-5, 0.5, 1500), rng.normal(5, 0.5, 1500)])
        assert modality_count(v) == 2

    def test_trimodal(self, rng):
        v = np.concatenate(
            [rng.normal(-10, 0.5, 1000), rng.normal(0, 0.5, 1000),
             rng.normal(10, 0.5, 1000)]
        )
        assert modality_count(v) == 3


class TestModality2d:
    def test_two_separated_blobs(self):
        from repro.core.density import modality_count_2d

        d = np.zeros((20, 20))
        d[5, 5] = 1.0
        d[15, 15] = 0.7
        assert modality_count_2d(d) == 2

    def test_flat_zero(self):
        from repro.core.density import modality_count_2d

        assert modality_count_2d(np.zeros((5, 5))) == 0

    def test_threshold_filters_small_bumps(self):
        from repro.core.density import modality_count_2d

        d = np.zeros((20, 20))
        d[5, 5] = 1.0
        d[15, 15] = 0.01   # below the 5% threshold
        assert modality_count_2d(d) == 1

    def test_kde_blobs(self, rng):
        from repro.core.density import kde_2d, modality_count_2d

        x = np.concatenate([rng.normal(0, 0.3, 300), rng.normal(6, 0.3, 300)])
        y = np.concatenate([rng.normal(0, 0.3, 300), rng.normal(6, 0.3, 300)])
        out = kde_2d(x, y, n_grid=40)
        assert modality_count_2d(out["density"]) == 2

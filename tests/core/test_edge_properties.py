"""Hypothesis property tests on edge detection."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.edges import detect_edges

power_series = hnp.arrays(
    np.float64,
    st.integers(2, 200),
    elements=st.floats(0.0, 1e7, allow_nan=False, allow_infinity=False),
)


class TestDetectEdgesProperties:
    @given(power_series, st.floats(1.0, 1e6))
    @settings(max_examples=80, deadline=None)
    def test_amplitudes_exceed_threshold(self, p, thr):
        t = np.arange(len(p)) * 10.0
        edges = detect_edges(t, p, thr)
        # every edge contains at least one step beyond the threshold, so the
        # cumulative amplitude is at least that large
        assert np.all(np.abs(edges["amplitude_w"]) > thr - 1e-9)

    @given(power_series, st.floats(1.0, 1e6))
    @settings(max_examples=80, deadline=None)
    def test_directions_alternate_or_separated(self, p, thr):
        t = np.arange(len(p)) * 10.0
        edges = detect_edges(t, p, thr)
        d = edges["direction"]
        assert set(np.unique(d)).issubset({-1, 1})

    @given(power_series, st.floats(1.0, 1e6))
    @settings(max_examples=80, deadline=None)
    def test_durations_positive_and_bounded(self, p, thr):
        t = np.arange(len(p)) * 10.0
        edges = detect_edges(t, p, thr)
        assert np.all(edges["duration_s"] > 0)
        assert np.all(edges["duration_s"] <= t[-1] - t[0] + 1e-9)

    @given(power_series, st.floats(1.0, 1e6))
    @settings(max_examples=80, deadline=None)
    def test_edge_times_within_series(self, p, thr):
        t = np.arange(len(p)) * 10.0
        edges = detect_edges(t, p, thr)
        assert np.all(edges["time"] >= t[0])
        assert np.all(edges["time"] <= t[-1])

    @given(power_series)
    @settings(max_examples=50, deadline=None)
    def test_huge_threshold_finds_nothing(self, p):
        t = np.arange(len(p)) * 10.0
        thr = float(np.ptp(p)) + 1.0
        assert detect_edges(t, p, thr).n_rows == 0

    @given(st.floats(10.0, 1e6), st.integers(2, 30))
    @settings(max_examples=50, deadline=None)
    def test_monotone_ramp_is_single_edge(self, step, n):
        p = np.arange(n, dtype=np.float64) * step
        t = np.arange(n) * 10.0
        edges = detect_edges(t, p, step * 0.5)
        assert edges.n_rows == 1
        assert edges["amplitude_w"][0] > 0

    @given(power_series, st.floats(1.0, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_offset_invariance(self, p, thr):
        """Adding a constant shifts nothing: same edges detected."""
        t = np.arange(len(p)) * 10.0
        a = detect_edges(t, p, thr)
        b = detect_edges(t, p + 12345.0, thr)
        assert a.n_rows == b.n_rows
        assert np.array_equal(a["start_index"], b["start_index"])
        assert np.allclose(a["amplitude_w"], b["amplitude_w"])

    @given(power_series, st.floats(1.0, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_negation_swaps_directions(self, p, thr):
        t = np.arange(len(p)) * 10.0
        a = detect_edges(t, p, thr)
        b = detect_edges(t, -p, thr)
        assert a.n_rows == b.n_rows
        if a.n_rows:
            assert np.array_equal(a["direction"], -b["direction"])

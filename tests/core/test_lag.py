"""Unit tests for the cross-correlation lag estimator."""

import numpy as np
import pytest

from repro.core.lag import estimate_lag_s


def step(n, at, lo=0.0, hi=1.0):
    x = np.full(n, lo)
    x[at:] = hi
    return x


class TestEstimateLag:
    def test_known_shift(self):
        driver = step(200, 50, 0, 1e6)
        response = step(200, 56, 0, 300.0)
        lag, corr = estimate_lag_s(driver, response, dt=10.0, max_lag_s=300.0)
        assert lag == pytest.approx(60.0)
        assert corr > 0.9

    def test_zero_lag(self):
        x = np.sin(np.linspace(0, 20, 300))
        lag, corr = estimate_lag_s(x, x * 5 + 3, dt=10.0, max_lag_s=200.0)
        assert lag == 0.0
        assert corr > 0.99

    def test_lagged_smooth_response(self):
        rngs = np.random.default_rng(0)
        x = np.cumsum(rngs.normal(0, 1, 500))
        k = 9
        y = np.concatenate([np.zeros(k), x[:-k]])
        lag, corr = estimate_lag_s(x, y, dt=10.0, max_lag_s=200.0)
        assert lag == pytest.approx(90.0)
        assert corr > 0.9

    def test_plant_staging_lag_about_a_minute(self):
        """The Figure 12 quantity: plant tonnage lags IT power by ~1 min."""
        from repro.config import SUMMIT
        from repro.cooling import CentralEnergyPlant, Weather

        plant = CentralEnergyPlant(SUMMIT, Weather(0))
        t = np.arange(0, 4 * 3600.0, 10.0)
        rngs = np.random.default_rng(1)
        power = 5e6 + 2e6 * (np.sin(2 * np.pi * t / 1800.0) > 0)
        st = plant.simulate(t, power)
        tons_w = (st.tower_tons + st.chiller_tons) * 3517.0
        lag, corr = estimate_lag_s(power, tons_w, dt=10.0, max_lag_s=300.0)
        assert 30.0 <= lag <= 150.0
        assert corr > 0.3

    def test_constant_series_nan(self):
        lag, corr = estimate_lag_s(np.ones(50), np.ones(50), 10.0, 100.0)
        assert np.isnan(lag)

    def test_too_short(self):
        lag, _ = estimate_lag_s(np.arange(3.0), np.arange(3.0), 10.0, 100.0)
        assert np.isnan(lag)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            estimate_lag_s(np.arange(5.0), np.arange(6.0), 10.0, 100.0)

"""Unit tests for the differenced-FFT characterization."""

import numpy as np
import pytest

from repro.core.spectral import dominant_mode, job_spectral_summary
from repro.frame import Table


class TestDominantMode:
    def test_recovers_square_wave_period(self):
        dt = 10.0
        t = np.arange(0, 4000, dt)
        p = 1000.0 + 500.0 * np.sign(np.sin(2 * np.pi * t / 200.0))
        f, a = dominant_mode(p, dt)
        assert f == pytest.approx(1 / 200.0, rel=0.15)
        assert a > 0

    def test_recovers_sine_period(self):
        dt = 10.0
        t = np.arange(0, 8000, dt)
        p = 1000.0 + 300.0 * np.sin(2 * np.pi * t / 400.0)
        f, _ = dominant_mode(p, dt)
        assert f == pytest.approx(1 / 400.0, rel=0.1)

    def test_trend_removed_by_differencing(self):
        """A strong linear trend must not mask the oscillation."""
        dt = 10.0
        t = np.arange(0, 8000, dt)
        p = 5.0 * t + 300.0 * np.sin(2 * np.pi * t / 400.0)
        f, _ = dominant_mode(p, dt)
        assert f == pytest.approx(1 / 400.0, rel=0.1)

    def test_amplitude_scales(self):
        dt = 10.0
        t = np.arange(0, 4000, dt)
        small = 100.0 * np.sin(2 * np.pi * t / 200.0)
        large = 1000.0 * np.sin(2 * np.pi * t / 200.0)
        _, a_small = dominant_mode(small, dt)
        _, a_large = dominant_mode(large, dt)
        assert a_large == pytest.approx(10 * a_small, rel=0.01)

    def test_short_series_nan(self):
        f, a = dominant_mode(np.array([1.0, 2.0]), 10.0)
        assert np.isnan(f) and np.isnan(a)

    def test_constant_series(self):
        f, a = dominant_mode(np.full(100, 5.0), 10.0)
        assert a == 0.0


class TestJobSummary:
    def test_per_job_rows(self):
        dt = 10.0
        t = np.arange(0, 2000, dt)
        p1 = 100 + 50 * np.sign(np.sin(2 * np.pi * t / 200.0))
        p2 = np.full_like(t, 300.0)
        js = Table(
            {
                "allocation_id": np.concatenate(
                    [np.full(len(t), 1), np.full(len(t), 2)]
                ).astype(np.int64),
                "timestamp": np.concatenate([t, t]),
                "sum_inp": np.concatenate([p1, p2]),
            }
        )
        out = job_spectral_summary(js, dt=dt)
        assert out.n_rows == 2
        row1 = out.filter(out["allocation_id"] == 1)
        assert row1["fft_freq_hz"][0] == pytest.approx(0.005, rel=0.2)
        row2 = out.filter(out["allocation_id"] == 2)
        assert row2["fft_amplitude_w"][0] == 0.0

    def test_short_jobs_get_nan(self):
        js = Table(
            {
                "allocation_id": np.array([5, 5], dtype=np.int64),
                "timestamp": np.array([0.0, 10.0]),
                "sum_inp": np.array([1.0, 2.0]),
            }
        )
        out = job_spectral_summary(js)
        assert np.isnan(out["fft_freq_hz"][0])
        assert out["n_samples"][0] == 2

    def test_twin_dominant_period_near_200s(self, job_series):
        """Figure 10: the most common dominant period is ~200 s.

        Checked over jobs whose dominant swing is significant (>50 W/node):
        the modal bin of the period histogram must straddle 200 s, with the
        high-frequency taper the paper describes.
        """
        out = job_spectral_summary(job_series)
        f, a = out["fft_freq_hz"], out["fft_amplitude_w"]
        per_node = {
            int(i): int(c)
            for i, c in zip(job_series["allocation_id"],
                            job_series["count_hostname"])
        }
        nodes = np.array([per_node[int(i)] for i in out["allocation_id"]])
        sig = np.isfinite(f) & (f > 0) & (a / nodes > 50.0)
        periods = 1.0 / f[sig]
        assert sig.sum() > 50
        bins = np.array([0, 50, 100, 150, 250, 400, 1000, 1e9])
        hist, _ = np.histogram(periods, bins=bins)
        assert np.argmax(hist) == 3  # the 150-250 s bin wins
        assert 80.0 < np.median(periods) < 350.0

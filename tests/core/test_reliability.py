"""Unit tests for reliability analytics."""

import numpy as np
import pytest

from repro.core.reliability import (
    cooccurrence_matrix,
    failure_composition,
    failures_per_project,
    slot_counts,
    thermal_extremity,
)
from repro.failures.model import job_thermal_summary
from repro.failures.xid import XID_TYPES

_NAME_TO_IDX = {t.name: i for i, t in enumerate(XID_TYPES)}


class TestComposition:
    def test_counts_match_log(self, failures):
        comp = failure_composition(failures)
        assert int(comp["count"].sum()) == failures.n_failures

    def test_user_types_dominate(self, failures):
        comp = failure_composition(failures)
        user = comp["count"][comp["user_associated"]].sum()
        hw = comp["count"][~comp["user_associated"]].sum()
        assert user > 20 * max(hw, 1)

    def test_max_node_share_bounds(self, failures):
        comp = failure_composition(failures)
        assert np.all(comp["max_node_share"] >= 0)
        assert np.all(comp["max_node_share"] <= 1)


class TestCooccurrence:
    def test_matrix_shape_and_symmetry(self, twin, failures):
        out = cooccurrence_matrix(failures, twin.config.n_nodes)
        c = out["corr"]
        assert c.shape == (16, 16)
        ok = np.isfinite(c)
        assert np.array_equal(ok, ok.T)
        assert np.allclose(c[ok], c.T[ok])

    def test_microcontroller_driver_pair(self, twin, failures):
        """Figure 13's strongest signal: micro-controller warnings co-occur
        with driver error handling exceptions (shared defect node)."""
        cts = failures.counts_by_type()
        if (cts["Internal microcontroller warning"] >= 5
                and cts["Driver error handling exception"] >= 5):
            out = cooccurrence_matrix(failures, twin.config.n_nodes)
            i = _NAME_TO_IDX["Internal microcontroller warning"]
            j = _NAME_TO_IDX["Driver error handling exception"]
            assert out["corr"][i, j] > 0.5

    def test_retire_cluster(self, twin, failures):
        cts = failures.counts_by_type()
        if cts["Double-bit error"] >= 10 and cts["Page retirement event"] >= 10:
            out = cooccurrence_matrix(failures, twin.config.n_nodes)
            i = _NAME_TO_IDX["Double-bit error"]
            j = _NAME_TO_IDX["Page retirement event"]
            assert out["corr"][i, j] > 0.2

    def test_bonferroni_threshold(self, twin, failures):
        strict = cooccurrence_matrix(failures, twin.config.n_nodes, bonferroni=True)
        loose = cooccurrence_matrix(failures, twin.config.n_nodes, bonferroni=False)
        assert strict["threshold"] < loose["threshold"]
        n_strict = np.isfinite(strict["significant"]).sum()
        n_loose = np.isfinite(loose["significant"]).sum()
        assert n_strict <= n_loose


class TestPerProject:
    def test_top_table(self, twin, failures):
        out = failures_per_project(failures, twin.catalog, twin.schedule, top=10)
        t = out["table"]
        assert t.n_rows <= 10
        rates = t["per_node_hour"]
        assert np.all(np.diff(rates) <= 1e-12)  # sorted descending
        assert np.all(rates >= 0)

    def test_breakdown_matches_counts(self, twin, failures):
        out = failures_per_project(failures, twin.catalog, twin.schedule, top=10)
        assert np.array_equal(
            out["breakdown"].sum(axis=1), out["table"]["n_failures"]
        )

    def test_hardware_only_subset(self, twin, failures):
        allf = failures_per_project(failures, twin.catalog, twin.schedule)
        hw = failures_per_project(
            failures, twin.catalog, twin.schedule, hardware_only=True
        )
        assert hw["table"]["n_failures"].sum() <= allf["table"]["n_failures"].sum()
        # hardware breakdown contains no user-associated types
        user_cols = [i for i, t in enumerate(XID_TYPES) if t.user_associated]
        assert hw["breakdown"][:, user_cols].sum() == 0

    def test_project_spread(self, twin, failures):
        """Figure 14: order-of-magnitude spread across projects."""
        out = failures_per_project(failures, twin.catalog, twin.schedule, top=15)
        r = out["table"]["per_node_hour"]
        if len(r) >= 10 and r[-1] > 0:
            assert r[0] / r[-1] > 3.0


class TestThermalExtremity:
    def test_table_fields(self, twin, failures):
        th = job_thermal_summary(twin.catalog)
        out = thermal_extremity(failures, th)
        t = out["table"]
        assert t.n_rows == 16
        assert set(t.columns) == {
            "xid_name", "n", "z_skewness", "max_temp_c", "frac_ge_60c"
        }

    def test_z_scores_standardized(self, twin, failures):
        th = job_thermal_summary(twin.catalog)
        out = thermal_extremity(failures, th)
        big = out["z_by_type"]["Memory page fault"]
        if len(big) > 200:
            assert abs(np.mean(big)) < 0.5
            assert 0.5 < np.std(big) < 2.0

    def test_right_skew_recovered(self, twin, failures):
        th = job_thermal_summary(twin.catalog)
        out = thermal_extremity(failures, th)
        t = out["table"]
        for name in ("Double-bit error", "Fallen off the bus"):
            row = t.filter(t["xid_name"] == name)
            if row["n"][0] >= 30:
                assert row["z_skewness"][0] > 0.0

    def test_double_bit_max_temp(self, twin, failures):
        th = job_thermal_summary(twin.catalog)
        out = thermal_extremity(failures, th)
        t = out["table"]
        row = t.filter(t["xid_name"] == "Double-bit error")
        if row["n"][0] > 0:
            assert row["max_temp_c"][0] <= 46.1 + 1e-6

    def test_super_offender_dropped(self, twin, failures):
        th = job_thermal_summary(twin.catalog)
        kept = thermal_extremity(failures, th, drop_super_offender=True)
        all_ = thermal_extremity(failures, th, drop_super_offender=False)
        n_kept = kept["table"]["n"].sum()
        n_all = all_["table"]["n"].sum()
        assert n_kept <= n_all


class TestSlotCounts:
    def test_totals(self, failures):
        out = slot_counts(failures)
        assert out["matrix"].sum() == failures.n_failures

    def test_gpu0_exposure(self, failures):
        """Single-GPU jobs expose slot 0 the most overall."""
        m = slot_counts(failures)["matrix"].sum(axis=0)
        assert m[0] == m.max()

"""Unit tests for coarsen / aggregate / jobjoin / energy stages."""

import numpy as np
import pytest

from repro.core import (
    cluster_component_series,
    cluster_power_series,
    coarsen_telemetry,
    job_energy,
    job_power_series,
    job_power_summary,
    job_component_series,
    job_component_summary,
    tag_allocations,
)
from repro.core.aggregate import component_sums_from_sockets
from repro.frame import Table


@pytest.fixture()
def telemetry():
    """Two nodes, 30 s of 1 Hz data with known values."""
    n_t = 30
    rows = []
    t = np.arange(n_t, dtype=np.float64)
    return Table(
        {
            "node": np.repeat([0, 1], n_t),
            "timestamp": np.tile(t, 2),
            "input_power": np.concatenate([np.full(n_t, 500.0), 1000.0 + t]),
            "cpu_power": np.full(2 * n_t, 200.0),
            "gpu_power": np.concatenate([np.full(n_t, 100.0), np.full(n_t, 600.0)]),
        }
    )


class TestCoarsen:
    def test_shapes_and_stats(self, telemetry):
        c = coarsen_telemetry(telemetry, ["input_power"], width=10.0)
        assert c.n_rows == 6  # 2 nodes x 3 windows
        node1 = c.filter(c["node"] == 1).sort("timestamp")
        assert np.allclose(node1["input_power_mean"], [1004.5, 1014.5, 1024.5])
        assert np.allclose(node1["input_power_max"], [1009, 1019, 1029])

    def test_nan_rows_dropped(self, telemetry):
        vals = telemetry["input_power"].copy()
        vals[:5] = np.nan
        t = telemetry.with_column("input_power", vals)
        c = coarsen_telemetry(t, ["input_power"], width=10.0)
        w0 = c.filter((c["node"] == 0) & (c["timestamp"] == 0.0))
        assert w0["count"][0] == 5

    def test_missing_column(self, telemetry):
        with pytest.raises(KeyError):
            coarsen_telemetry(telemetry, ["nope"])


class TestClusterSeries:
    def test_sum_across_nodes(self, telemetry):
        c = coarsen_telemetry(telemetry, ["input_power"], width=10.0)
        s = cluster_power_series(c)
        assert s.n_rows == 3
        assert np.allclose(s["sum_inp"], [500 + 1004.5, 500 + 1014.5, 500 + 1024.5])
        assert np.array_equal(s["count_inp"], [2, 2, 2])

    def test_component_series(self, telemetry):
        c = coarsen_telemetry(telemetry, ["cpu_power", "gpu_power"], width=10.0)
        s = cluster_component_series(c)
        assert np.allclose(s["mean_cpu_power"], 200.0)
        assert np.allclose(s["mean_gpu_power"], 350.0)
        assert np.allclose(s["max_gpu_power"], 600.0)

    def test_missing_column_raises(self, telemetry):
        c = coarsen_telemetry(telemetry, ["input_power"], width=10.0)
        with pytest.raises(KeyError):
            cluster_component_series(c)

    def test_component_sums_from_sockets(self):
        t = Table(
            {
                "p0_power": np.array([100.0]),
                "p1_power": np.array([120.0]),
                "gpu_power_total": np.array([900.0]),
            }
        )
        out = component_sums_from_sockets(t)
        assert out["cpu_power"][0] == 220.0
        assert out["gpu_power"][0] == 900.0


class TestJobJoin:
    @pytest.fixture()
    def tagged(self, telemetry):
        c = coarsen_telemetry(telemetry, ["input_power"], width=10.0)
        na = Table(
            {
                "allocation_id": np.array([7, 7], dtype=np.int64),
                "node": np.array([0, 1], dtype=np.int64),
                "begin_time": np.array([0.0, 0.0]),
                "end_time": np.array([20.0, 20.0]),
            }
        )
        return tag_allocations(c, na)

    def test_tagging(self, tagged):
        covered = tagged.filter(tagged["timestamp"] < 20.0)
        assert np.all(covered["allocation_id"] == 7)
        outside = tagged.filter(tagged["timestamp"] >= 20.0)
        assert np.all(outside["allocation_id"] == -1)

    def test_job_power_series(self, tagged):
        js = job_power_series(tagged)
        assert js.n_rows == 2  # two covered windows
        assert np.array_equal(js["count_hostname"], [2, 2])
        assert np.allclose(js["sum_inp"], [1504.5, 1514.5])

    def test_job_power_summary(self, tagged):
        js = job_power_series(tagged)
        summ = job_power_summary(js)
        assert summ.n_rows == 1
        assert np.isclose(summ["max_sum_inp"][0], 1514.5)
        assert np.isclose(summ["mean_sum_inp"][0], 1509.5)

    def test_component_series_and_summary(self, telemetry):
        c = coarsen_telemetry(
            telemetry, ["cpu_power", "gpu_power"], width=10.0
        )
        na = Table(
            {
                "allocation_id": np.array([9], dtype=np.int64),
                "node": np.array([1], dtype=np.int64),
                "begin_time": np.array([0.0]),
                "end_time": np.array([30.0]),
            }
        )
        tagged = tag_allocations(c, na)
        jc = job_component_series(tagged)
        assert np.allclose(jc["mean_gpu_power"], 600.0)
        summ = job_component_summary(jc)
        assert np.isclose(summ["mean_mean_gpu_pwr"][0], 600.0)
        assert np.isclose(summ["max_cpu_pwr"][0], 200.0)


class TestEnergy:
    def test_energy_integration(self):
        js = Table(
            {
                "allocation_id": np.array([1, 1, 1], dtype=np.int64),
                "timestamp": np.array([0.0, 10.0, 20.0]),
                "count_hostname": np.array([4, 4, 4], dtype=np.int64),
                "sum_inp": np.array([1000.0, 2000.0, 3000.0]),
            }
        )
        e = job_energy(js, window_s=10.0)
        assert np.isclose(e["energy"][0], 60_000.0)
        assert e["num_nodes"][0] == 4

    def test_gpu_energy_join(self):
        js = Table(
            {
                "allocation_id": np.array([1], dtype=np.int64),
                "timestamp": np.array([0.0]),
                "count_hostname": np.array([2], dtype=np.int64),
                "sum_inp": np.array([1000.0]),
            }
        )
        gs = Table(
            {
                "allocation_id": np.array([1], dtype=np.int64),
                "timestamp": np.array([0.0]),
                "count_hostname": np.array([2], dtype=np.int64),
                "mean_gpu_power": np.array([300.0]),
            }
        )
        e = job_energy(js, window_s=10.0, gpu_series=gs)
        assert np.isclose(e["gpu_energy"][0], 300.0 * 2 * 10.0)

"""Unit tests for edge detection, durations, and snapshot superposition."""

import numpy as np
import pytest

from repro.core.edges import (
    amplitude_class_mw,
    detect_edges,
    edges_per_job,
    extract_snapshot,
    superimpose,
)
from repro.frame import Table


def series(values, dt=10.0):
    v = np.asarray(values, dtype=np.float64)
    return np.arange(len(v)) * dt, v


class TestDetect:
    def test_no_edges_in_flat_series(self):
        t, p = series([100.0] * 20)
        assert detect_edges(t, p, 50.0).n_rows == 0

    def test_single_rising_edge(self):
        t, p = series([100, 100, 100, 900, 900, 900, 900])
        e = detect_edges(t, p, 500.0)
        assert e.n_rows == 1
        assert e["direction"][0] == 1
        assert e["amplitude_w"][0] == 800.0
        assert e["time"][0] == 20.0

    def test_single_falling_edge(self):
        t, p = series([900, 900, 100, 100])
        e = detect_edges(t, p, 500.0)
        assert e.n_rows == 1
        assert e["direction"][0] == -1
        assert e["amplitude_w"][0] == -800.0

    def test_multi_step_edge_merges(self):
        """A swing spread over consecutive steps is ONE edge with the
        cumulative amplitude."""
        t, p = series([100, 700, 1300, 1900, 1900])
        e = detect_edges(t, p, 500.0)
        assert e.n_rows == 1
        assert e["amplitude_w"][0] == 1800.0

    def test_rise_then_fall(self):
        t, p = series([100, 900, 900, 900, 100, 100])
        e = detect_edges(t, p, 500.0)
        assert e.n_rows == 2
        assert np.array_equal(e["direction"], [1, -1])

    def test_subthreshold_change_ignored(self):
        t, p = series([100, 400, 700, 1000])
        assert detect_edges(t, p, 500.0).n_rows == 0

    def test_duration_80_percent_return(self):
        # rise 100 -> 1100 at step 1, return at value <= 1100 - 0.8*1000 = 300
        t, p = series([100, 1100, 1100, 800, 500, 250, 100])
        e = detect_edges(t, p, 500.0)
        assert e.n_rows == 1
        assert e["returned"][0]
        # start at t=0 (step index 0), return at index 5 (value 250)
        assert e["duration_s"][0] == 50.0

    def test_duration_tracks_running_peak(self):
        # power keeps climbing after the edge; peak updates
        t, p = series([100, 1100, 2100, 2100, 900, 300, 290])
        e = detect_edges(t, p, 500.0)
        # target = 2100 - 0.8*(2100-100) = 500 -> first hit at index 5
        assert e["peak_w"][0] == 2100.0
        assert e["duration_s"][0] == 50.0

    def test_truncated_duration(self):
        """Never returning -> duration runs to the series end (the class-5
        wall-limit kink of Figure 10)."""
        t, p = series([100, 1100, 1100, 1100])
        e = detect_edges(t, p, 500.0)
        assert not e["returned"][0]
        assert e["duration_s"][0] == 30.0

    def test_falling_edge_duration(self):
        t, p = series([1100, 100, 100, 500, 900, 950])
        e = detect_edges(t, p, 500.0)
        # target = 100 + 0.8*(1100-100) = 900 -> hit at index 4
        assert e["direction"][0] == -1
        assert e["returned"][0]
        assert e["duration_s"][0] == 40.0

    def test_short_series(self):
        assert detect_edges(np.array([0.0]), np.array([1.0]), 1.0).n_rows == 0

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            detect_edges(np.arange(3.0), np.arange(4.0), 1.0)


class TestEdgesPerJob:
    def test_threshold_scales_with_nodes(self):
        # same per-node swing; job A (1 node) crosses its threshold,
        # job B's (10 nodes) total swing is below 10x threshold
        js = Table(
            {
                "allocation_id": np.array([1] * 4 + [2] * 4, dtype=np.int64),
                "timestamp": np.tile(np.arange(4) * 10.0, 2),
                "count_hostname": np.array([1] * 4 + [10] * 4, dtype=np.int64),
                "sum_inp": np.array(
                    [500, 1500, 1500, 1500,           # 1 node: +1000 > 868
                     5000, 6000, 6000, 6000],         # 10 nodes: +1000 < 8680
                    dtype=np.float64,
                ),
            }
        )
        edges, per_job = edges_per_job(js)
        pj = {int(a): int(n) for a, n in zip(per_job["allocation_id"], per_job["n_edges"])}
        assert pj[1] == 1
        assert pj[2] == 0
        assert np.all(edges["allocation_id"] == 1)

    def test_rising_falling_split(self):
        js = Table(
            {
                "allocation_id": np.ones(6, dtype=np.int64),
                "timestamp": np.arange(6) * 10.0,
                "count_hostname": np.ones(6, dtype=np.int64),
                "sum_inp": np.array([100, 1100, 1100, 100, 100, 1100.0]),
            }
        )
        _, per_job = edges_per_job(js)
        assert per_job["n_rising"][0] == 2
        assert per_job["n_falling"][0] == 1

    def test_every_job_reported(self, job_series):
        _, per_job = edges_per_job(job_series)
        assert per_job.n_rows == len(np.unique(job_series["allocation_id"]))

    def test_most_jobs_edge_free(self, job_series):
        """The paper: 96.9% of jobs experience no edges."""
        _, per_job = edges_per_job(job_series)
        frac = (per_job["n_edges"] == 0).mean()
        assert frac > 0.85


class TestSnapshots:
    def test_extract_centered(self):
        t = np.arange(10) * 10.0
        v = np.arange(10.0)
        snap = extract_snapshot(t, v, center_time=50.0, before_s=20.0, after_s=30.0)
        assert len(snap) == 6
        assert np.array_equal(snap, [3, 4, 5, 6, 7, 8])

    def test_extract_pads_nan(self):
        t = np.arange(5) * 10.0
        v = np.arange(5.0)
        snap = extract_snapshot(t, v, center_time=10.0, before_s=30.0, after_s=10.0)
        assert np.isnan(snap[0]) and np.isnan(snap[1])
        assert np.array_equal(snap[2:], [0, 1, 2])

    def test_superimpose_mean_ci(self):
        snaps = np.array([[1.0, 2.0, 3.0], [3.0, 4.0, 5.0]])
        out = superimpose(snaps)
        assert np.allclose(out["mean"], [2, 3, 4])
        assert np.all(out["ci95"] > 0)
        assert np.array_equal(out["count"], [2, 2, 2])

    def test_superimpose_nan_aware(self):
        snaps = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = superimpose(snaps)
        assert out["mean"][1] == 4.0
        assert out["count"][1] == 1

    def test_amplitude_class(self):
        a = amplitude_class_mw(np.array([0.5e6, -1.2e6, 7.3e6]))
        assert np.array_equal(a, [0, 1, 7])

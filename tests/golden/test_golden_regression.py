"""Golden-regression harness: every benchmark artifact, one small run.

The whole ``benchmarks/`` suite executes **once per test session** in a
subprocess at ``REPRO_BENCH_SCALE=0.02`` with ``REPRO_BENCH_OUTPUT``
redirected to a temp directory (the committed goldens are never written).
Each ``bench_*`` module then gets one parametrized test asserting its
regenerated artifact still matches ``benchmarks/output/<stem>.txt``:
identical title, and the scale-robust key scalars (PUE anchors,
machine-sized row counts, config tables, validation biases) within the
tolerances defined in ``tools/check_golden.py`` — the same comparator the
manual regeneration tool uses.

Statistical anchors that need full scale are soft inside the bench suite
(``benchutil.anchor``); the two modules that hard-assert at full scale
still emit their artifact before failing, so the subprocess exit code is
not part of the contract.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_DIR = REPO_ROOT / "benchmarks" / "output"
SCALE = 0.02

_spec = importlib.util.spec_from_file_location(
    "check_golden", REPO_ROOT / "tools" / "check_golden.py"
)
check_golden = importlib.util.module_from_spec(_spec)
# dataclass processing resolves annotations via sys.modules[__module__]
sys.modules["check_golden"] = check_golden
_spec.loader.exec_module(check_golden)

STEMS = sorted(p.stem for p in GOLDEN_DIR.glob("*.txt"))


@pytest.fixture(scope="session")
def fresh_dir(tmp_path_factory):
    """Artifacts from one scaled-down run of the full benchmark suite."""
    out = tmp_path_factory.mktemp("golden")
    check_golden.regenerate(out, SCALE)
    return out


def test_goldens_exist():
    assert len(STEMS) >= 20, "committed goldens are missing"


def test_every_bench_module_has_a_golden():
    bench_dir = REPO_ROOT / "benchmarks"
    missing = []
    for mod in sorted(bench_dir.glob("bench_*.py")):
        stem = mod.stem.removeprefix("bench_")
        if stem not in STEMS:
            missing.append(mod.name)
    assert missing == [], f"bench modules without a committed golden: {missing}"


@pytest.mark.parametrize("stem", STEMS)
def test_artifact_matches_golden(fresh_dir, stem):
    fresh_path = fresh_dir / f"{stem}.txt"
    assert fresh_path.exists(), (
        f"benchmark did not emit {stem}.txt (did its module abort before "
        f"emit()?)"
    )
    fresh = fresh_path.read_text()
    assert fresh.strip(), f"{stem}.txt came out empty"
    golden = (GOLDEN_DIR / f"{stem}.txt").read_text()
    problems = check_golden.compare_text(stem, fresh, golden)
    assert problems == [], (
        f"{stem} drifted from the committed golden:\n  "
        + "\n  ".join(problems)
    )

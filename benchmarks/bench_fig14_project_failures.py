"""Figure 14 — GPU failures per node-hour for the top-15 error-prone
projects, all failures and hardware-only."""

import numpy as np

from benchutil import anchor, emit
from repro.core.reliability import failures_per_project
from repro.core.report import render_table


def run_both(twin_year):
    allf = failures_per_project(
        twin_year.failures, twin_year.catalog, twin_year.schedule, top=15
    )
    hw = failures_per_project(
        twin_year.failures, twin_year.catalog, twin_year.schedule,
        hardware_only=True, top=15,
    )
    return allf, hw


def test_fig14_project_failures(benchmark, twin_year):
    allf, hw = benchmark.pedantic(
        run_both, args=(twin_year,), rounds=1, iterations=1
    )

    def table_of(out, title):
        t = out["table"]
        rows = [
            [str(t["project"][i]), f"{t['node_hours'][i]:.0f}",
             int(t["n_failures"][i]), f"{t['per_node_hour'][i]:.2e}"]
            for i in range(t.n_rows)
        ]
        return render_table(
            ["project", "node-hours", "failures", "per node-hour"],
            rows, title=title,
        )

    emit("fig14_project_failures", "\n\n".join([
        table_of(allf, "Figure 14-(a): all failures, top-15 projects"),
        table_of(hw, "Figure 14-(b): hardware failures, top-15 projects"),
    ]))

    ta, th = allf["table"], hw["table"]
    anchor(ta.n_rows >= 10, "enough error-prone projects observed")
    # strong spread across projects: the paper's Figure 14-(a) bars span
    # roughly 4-5x *within* the top-15 (the upper tail is compressed);
    # the full project population spans an order of magnitude
    ra = ta["per_node_hour"]
    if len(ra) >= 10 and ra[len(ra) - 1] > 0:
        anchor(ra[0] / ra[len(ra) - 1] > 3.0,
               "failure rate spreads several-fold within the top-15")
    # hardware rates are orders of magnitude below all-failure rates
    # (paper: ~0.2 vs ~0.0012 per node-hour scales)
    if th.n_rows and ta.n_rows:
        anchor(th["per_node_hour"][0] < 0.1 * ta["per_node_hour"][0],
               "hardware failures far rarer than soft failures")
    # the two rankings differ: defect-node luck, not workload, drives
    # hardware failures (compare the ordered top-10 sequences — soft-error-
    # prone projects burn many node-hours, so some set overlap is expected)
    if th.n_rows >= 10 and ta.n_rows >= 10:
        order_all = [str(p) for p in ta["project"][:10]]
        order_hw = [str(p) for p in th["project"][:10]]
        anchor(order_all != order_hw,
               "hardware ranking differs from all-failure ranking")

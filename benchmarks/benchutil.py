"""Helpers shared by benchmark modules (importable, unlike conftest)."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.config import SUMMIT

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
#: where emit() persists rendered artifacts; ``REPRO_BENCH_OUTPUT``
#: redirects it so scaled-down runs (golden-regression tests, CI smoke)
#: never clobber the committed full-scale goldens
OUTPUT_DIR = Path(
    os.environ.get("REPRO_BENCH_OUTPUT") or Path(__file__).parent / "output"
)

#: day-of-year offset for the paper's summer window (July 24)
SUMMER_START_S = 205 * 86_400.0


def emit(name: str, text: str) -> None:
    """Print a rendered figure/table and persist it to benchmarks/output/."""
    print("\n" + text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def full_scale_ratio(twin) -> float:
    """Power multiplier that maps a scaled twin onto full-Summit megawatts."""
    return SUMMIT.n_nodes / twin.config.n_nodes


def to_mw_equiv(power_w: np.ndarray, twin) -> np.ndarray:
    """Express twin power as full-scale-equivalent megawatts."""
    return np.asarray(power_w) * full_scale_ratio(twin) / 1e6


#: statistical anchors are only asserted when the run is near full scale;
#: quick runs (REPRO_BENCH_SCALE < 0.5) still execute and print everything.
FULL_STATS = SCALE >= 0.5

_soft_failures: list[str] = []


def anchor(condition: bool, label: str) -> None:
    """Assert a paper anchor at full scale; warn (don't fail) when the run
    is statistically starved by REPRO_BENCH_SCALE."""
    if condition:
        return
    if FULL_STATS:
        raise AssertionError(f"paper anchor violated: {label}")
    _soft_failures.append(label)
    print(f"[scale {SCALE}] anchor skipped (too few samples): {label}")

"""Helpers shared by benchmark modules (importable, unlike conftest)."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.config import SUMMIT

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
#: where emit() persists rendered artifacts; ``REPRO_BENCH_OUTPUT``
#: redirects it so scaled-down runs (golden-regression tests, CI smoke)
#: never clobber the committed full-scale goldens
OUTPUT_DIR = Path(
    os.environ.get("REPRO_BENCH_OUTPUT") or Path(__file__).parent / "output"
)

#: day-of-year offset for the paper's summer window (July 24)
SUMMER_START_S = 205 * 86_400.0


def emit(name: str, text: str) -> None:
    """Print a rendered figure/table and persist it to benchmarks/output/."""
    print("\n" + text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def full_scale_ratio(twin) -> float:
    """Power multiplier that maps a scaled twin onto full-Summit megawatts."""
    return SUMMIT.n_nodes / twin.config.n_nodes


def to_mw_equiv(power_w: np.ndarray, twin) -> np.ndarray:
    """Express twin power as full-scale-equivalent megawatts."""
    return np.asarray(power_w) * full_scale_ratio(twin) / 1e6


#: statistical anchors are only asserted when the run is near full scale;
#: quick runs (REPRO_BENCH_SCALE < 0.5) still execute and print everything.
FULL_STATS = SCALE >= 0.5

_soft_failures: list[str] = []


def anchor(condition: bool, label: str) -> None:
    """Assert a paper anchor at full scale; warn (don't fail) when the run
    is statistically starved by REPRO_BENCH_SCALE."""
    if condition:
        return
    if FULL_STATS:
        raise AssertionError(f"paper anchor violated: {label}")
    _soft_failures.append(label)
    print(f"[scale {SCALE}] anchor skipped (too few samples): {label}")


#: tracing-disabled overhead budget shared by the instrumented benches:
#: the fraction of a hot phase's wall clock the no-op ``trace.span()``
#: fast path may cost (asserted hard at every scale — the per-call cost
#: does not shrink with REPRO_BENCH_SCALE)
TRACE_OVERHEAD_BUDGET = 0.01


def disabled_span_cost(n: int = 200_000) -> float:
    """Measured per-call seconds of the tracing-disabled ``span()`` fast
    path (one branch, a counter bump, and a shared no-op object)."""
    import time

    from repro.obs import trace

    assert not trace.is_enabled(), "overhead probe needs tracing off"
    t0 = time.perf_counter()
    for _ in range(n):
        trace.span("bench.overhead")
    return (time.perf_counter() - t0) / n


def trace_overhead_pct(span_calls: int, hot_wall_s: float) -> float:
    """The tracing-disabled overhead over a measured hot phase, in
    percent: (no-op span calls taken) x (measured per-call cost) /
    (phase wall clock)."""
    if hot_wall_s <= 0.0:
        return 0.0
    return span_calls * disabled_span_cost() / hot_wall_s * 100.0

"""Figure 10 — power consumption dynamics: edge counts and durations per
class, and the differenced-FFT frequency/amplitude distributions."""

import numpy as np

from benchutil import anchor, emit
from repro.core.edges import edges_per_job
from repro.core.report import render_cdf_quantiles, render_table
from repro.core.spectral import job_spectral_summary
from repro.frame.join import join


def per_node_counts(spectral, job_series):
    """Node count per job, aligned with the spectral summary rows."""
    lookup = {
        int(i): int(c)
        for i, c in zip(job_series["allocation_id"], job_series["count_hostname"])
    }
    return np.array([lookup.get(int(i), 1) for i in spectral["allocation_id"]])


def run_dynamics(twin_jobs, job_series):
    edges, per_job = edges_per_job(job_series)
    spectral = job_spectral_summary(job_series)
    cat = twin_jobs.catalog.table.select(["allocation_id", "sched_class"])
    per_job = join(per_job, cat, "allocation_id", how="inner")
    edges = join(edges, cat, "allocation_id", how="inner")
    spectral = join(spectral, cat, "allocation_id", how="inner")
    return edges, per_job, spectral


def test_fig10_power_dynamics(benchmark, twin_jobs, job_series_jobs):
    edges, per_job, spectral = benchmark.pedantic(
        run_dynamics, args=(twin_jobs, job_series_jobs), rounds=1, iterations=1
    )

    edge_free = (per_job["n_edges"] == 0).mean()
    lines = [
        "Figure 10: power consumption dynamics",
        f"jobs with no edges: {edge_free:.1%} (paper: 96.9%)",
        "",
    ]
    rows = []
    for cls in (1, 2, 3, 4, 5):
        pj = per_job.filter(per_job["sched_class"] == cls)
        ej = edges.filter(edges["sched_class"] == cls)
        with_edges = pj.filter(pj["n_edges"] > 0)
        med_edges = (
            float(np.median(with_edges["n_edges"])) if with_edges.n_rows else 0.0
        )
        med_dur = (
            float(np.median(ej["duration_s"]) / 60.0) if ej.n_rows else float("nan")
        )
        rows.append([
            cls, pj.n_rows, with_edges.n_rows, med_edges,
            f"{med_dur:.1f}" if np.isfinite(med_dur) else "-",
        ])
    lines.append(render_table(
        ["class", "jobs", "jobs w/ edges", "median edges/job",
         "median edge duration (min)"],
        rows,
    ))
    f = spectral["fft_freq_hz"]
    a = spectral["fft_amplitude_w"]
    ok = np.isfinite(f) & (f > 0)
    lines.append("")
    lines.append(render_cdf_quantiles("FFT dominant freq (Hz)", f[ok]))
    lines.append(render_cdf_quantiles("FFT dominant period (s)", 1.0 / f[ok]))
    lines.append(render_cdf_quantiles("FFT amplitude (W)", a[ok]))
    emit("fig10_dynamics", "\n".join(lines))

    # the large majority of jobs see no edges (paper: 96.9%)
    assert edge_free > 0.85

    # class 4 jobs experience the most edges among jobs that have any
    med_by_class = {}
    for cls in (1, 3, 4, 5):
        pj = per_job.filter(
            (per_job["sched_class"] == cls) & (per_job["n_edges"] > 0)
        )
        if pj.n_rows:
            med_by_class[cls] = float(np.mean(pj["n_edges"]))
    if 4 in med_by_class and 1 in med_by_class:
        assert med_by_class[4] >= med_by_class[1]

    # class 1 edges are more sustained than class 4's (short bursts)
    d1 = edges.filter(edges["sched_class"] == 1)["duration_s"]
    d4 = edges.filter(edges["sched_class"] == 4)["duration_s"]
    if len(d1) >= 5 and len(d4) >= 5:
        assert np.median(d1) > np.median(d4)

    # spectral shape: among jobs with a significant dominant swing
    # (>50 W/node), the modal period straddles ~200 s with a taper toward
    # 0.05 Hz
    per_node_amp = a / np.maximum(per_node_counts(spectral, job_series_jobs), 1)
    sig = ok & (per_node_amp > 50.0)
    periods = 1.0 / f[sig]
    hist, _ = np.histogram(periods, bins=[0, 50, 100, 150, 250, 400, 1000, 1e9])
    anchor(hist.argmax() in (2, 3), "modal dominant period near 200 s")
    # amplitudes skew low with a heavy right tail
    amp = a[ok & (a > 0)]
    anchor(np.median(amp) < 0.25 * np.quantile(amp, 0.99),
           "amplitude distribution skews low with a heavy tail")

"""Table 2 — data specification: per-stream row counts and footprints.

The twin-year inventory is extrapolated to the full machine/year and
compared against the paper's ordering: per-node telemetry (a) dominates by
orders of magnitude, then per-node allocation history (d), then allocation
history (c), CEP data (b), and the XID log (e).
"""

import numpy as np

from benchutil import emit, full_scale_ratio
from repro.config import SUMMIT
from repro.core.report import fmt_si, render_table
from repro.datasets import dataset_inventory
from repro.telemetry import compression_ratio
from repro.telemetry.schema import N_METRICS


def build_inventory(twin_year):
    inv = dataset_inventory(twin_year)
    # compression ratio of a representative telemetry channel
    arr = twin_year.builder.build(0.0, 3600.0, 1.0)
    node0 = np.round(arr.node_input_w[0])
    ratio = compression_ratio(node0)
    return inv, ratio


def test_table2_data_spec(benchmark, twin_year):
    inv, ratio = benchmark.pedantic(
        build_inventory, args=(twin_year,), rounds=1, iterations=1
    )
    scale = full_scale_ratio(twin_year)
    rows = [
        ["(a) per-node telemetry", inv["telemetry_rows"],
         int(inv["telemetry_rows"] * scale),
         f"~{N_METRICS} metrics/node @ 1 Hz; codec {ratio:.1f}x"],
        ["(b) central energy plant", inv["plant_rows"],
         inv["plant_rows"], "15 s cadence (machine-size independent)"],
        ["(c) allocation history", inv["allocations_rows"],
         int(inv["allocations_rows"] * scale), "one row per started job"],
        ["(d) per-node allocation hist.", inv["node_allocation_rows"],
         int(inv["node_allocation_rows"] * scale), "one row per (job, node)"],
        ["(e) GPU XID log", inv["xid_rows"],
         int(inv["xid_rows"] * scale / 10.0), "intensity 10x removed"],
    ]
    emit("table2_data", render_table(
        ["stream", "twin rows", "full-scale rows", "notes"],
        rows,
        title="Table 2: data specification (twin year, extrapolated)",
    ))

    # paper's ordering: (a) >> (d) > (c) > (e); telemetry dwarfs everything
    assert inv["telemetry_rows"] > 1000 * inv["node_allocation_rows"]
    assert inv["node_allocation_rows"] > inv["allocations_rows"]
    # full-scale telemetry rows land near the paper's 134B/year
    full_rows = inv["telemetry_rows"] * scale
    assert 0.3e11 < full_rows < 3e11
    # the lossless codec sustains the ~1 MB/s claim: 460k metrics/s of
    # 8-byte samples -> needs roughly >3x compression; smooth power channels
    # deliver far more
    assert ratio > 5.0

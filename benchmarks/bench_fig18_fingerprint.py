"""Extension X2 — Section 9 future work: job power-profile fingerprinting.

Builds fingerprint vectors from the derived datasets, clusters them, forms
user portraits, and shows the portrait predictor beats the global-history
baseline for queued-job power — the paper's proposed predictive analytics.
"""

import numpy as np

from benchutil import anchor, emit
from repro.core.edges import edges_per_job
from repro.core.energy import job_energy
from repro.core.fingerprint import (
    job_fingerprints,
    kmeans,
    portrait_prediction_error,
    user_portraits,
)
from repro.core.jobjoin import job_power_summary
from repro.core.report import render_table
from repro.core.spectral import job_spectral_summary


def run_fingerprinting(twin_jobs, job_series):
    summary = job_power_summary(job_series)
    energy = job_energy(job_series)
    spectral = job_spectral_summary(job_series)
    _, per_job = edges_per_job(job_series)
    fp = job_fingerprints(summary, energy, spectral, per_job,
                          twin_jobs.catalog.table)
    k = 6
    centers, labels = kmeans(fp["features"], k, seed=3)
    portraits = user_portraits(fp["features"], fp["user_id"])
    pred = portrait_prediction_error(fp, seed=3)
    return fp, centers, labels, portraits, pred


def test_fig18_fingerprinting(benchmark, twin_jobs, job_series_jobs):
    fp, centers, labels, portraits, pred = benchmark.pedantic(
        run_fingerprinting, args=(twin_jobs, job_series_jobs),
        rounds=1, iterations=1,
    )
    sizes = np.bincount(labels, minlength=centers.shape[0])
    rows = [
        [i, int(sizes[i])] + [f"{c:.2f}" for c in centers[i][:4]]
        for i in range(centers.shape[0])
    ]
    emit("fig18_fingerprint", "\n".join([
        render_table(
            ["cluster", "jobs", *fp["names"][:4]],
            rows,
            title="X2: job power-fingerprint clusters (standardized features)",
        ),
        "",
        f"user portraits: {len(portraits)} users",
        f"queued-job mean-power prediction MAE: global {pred['mae_global_w']:.0f} W/node"
        f" vs portrait {pred['mae_portrait_w']:.0f} W/node"
        f" ({pred['improvement']:.1%} better, n_test={int(pred['n_test'])})",
    ]))

    # clustering found real structure: multiple populated clusters
    anchor((sizes > 0).sum() >= 3, "several populated fingerprint clusters")
    # the portrait predictor beats the global baseline (power history alone
    # is insufficient — Section 9's motivation)
    anchor(pred["improvement"] > 0.05,
           f"user portraits improve prediction (got {pred['improvement']:.1%})")
    assert pred["mae_portrait_w"] > 0

"""Table 3 — Summit scheduling classes, and their realized populations."""

import numpy as np

from benchutil import emit
from repro.config import SCHEDULING_CLASSES, SUMMIT
from repro.core.report import render_table


def realized_populations(twin_jobs):
    cat = twin_jobs.catalog.table
    counts = np.bincount(cat["sched_class"], minlength=6)[1:]
    return counts


def test_table3_scheduling_classes(benchmark, twin_jobs):
    counts = benchmark.pedantic(
        realized_populations, args=(twin_jobs,), rounds=1, iterations=1
    )
    scaled = twin_jobs.config.scheduling_classes()
    rows = []
    for cls, sc, n in zip(SCHEDULING_CLASSES, scaled, counts):
        rows.append(
            [cls.index, f"{cls.min_nodes}-{cls.max_nodes}",
             f"{sc.min_nodes}-{sc.max_nodes}",
             f"{cls.max_walltime_h:.0f}", int(n),
             f"{n / counts.sum():.1%}"]
        )
    emit("table3_classes", render_table(
        ["class", "node range (full)", "node range (twin)",
         "max walltime (h)", "twin jobs", "share"],
        rows,
        title="Table 3: Summit scheduling policy and twin job population",
    ))

    # Table 3 policy anchors
    assert SCHEDULING_CLASSES[0].min_nodes == 2765
    assert SCHEDULING_CLASSES[0].max_nodes == 4608
    assert SCHEDULING_CLASSES[-1].max_walltime_h == 2.0
    # population shape: class 5 dominates, leadership classes are rare
    assert counts[4] > 0.6 * counts.sum()
    assert counts[0] < 0.05 * counts.sum()
    # ranges are contiguous and ordered at full scale
    for a, b in zip(SCHEDULING_CLASSES[:-1], SCHEDULING_CLASSES[1:]):
        assert b.max_nodes == a.min_nodes - 1

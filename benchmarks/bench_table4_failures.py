"""Table 4 — GPU failure composition over the twin year."""

import numpy as np

from benchutil import emit
from repro.core.reliability import failure_composition
from repro.core.report import render_table
from repro.failures.xid import XID_TYPES


def test_table4_failure_composition(benchmark, twin_year):
    comp = benchmark.pedantic(
        failure_composition, args=(twin_year.failures,), rounds=1, iterations=1
    )
    rows = []
    for i in range(comp.n_rows):
        rows.append(
            [
                comp["xid_name"][i],
                int(comp["count"][i]),
                int(comp["max_count_per_node"][i]),
                f"{comp['max_node_share'][i]:.1%}",
                "user" if comp["user_associated"][i] else "hw/driver",
            ]
        )
    emit("table4_failures", render_table(
        ["GPU error", "count", "max/node", "max node share", "assoc."],
        rows,
        title="Table 4: GPU failure composition (twin year, intensity 10x)",
    ))

    counts = {n: int(c) for n, c in zip(comp["xid_name"], comp["count"])}
    shares = {n: float(s) for n, s in zip(comp["xid_name"], comp["max_node_share"])}

    # ordering of the top of the table
    assert counts["Memory page fault"] > counts["Graphics engine exception"]
    assert counts["Graphics engine exception"] > counts["Stopped processing"]
    assert counts["Stopped processing"] > counts["NVLINK error"]
    assert counts["NVLINK error"] > counts["Page retirement event"]

    # user-associated failures dwarf hardware/driver failures
    user = sum(counts[t.name] for t in XID_TYPES if t.user_associated)
    hw = sum(counts[t.name] for t in XID_TYPES if not t.user_associated)
    assert user > 50 * max(hw, 1)

    # composition ratios within ~2x of the paper's (big classes)
    ratio = counts["Memory page fault"] / max(counts["Graphics engine exception"], 1)
    assert 2.5 < ratio < 12.0  # paper: 186,496 / 32,339 = 5.8

    # the NVLink super-offender concentrates ~97% on one node
    assert shares["NVLINK error"] > 0.85
    # workload-spread types stay diffuse (paper: 0.6% of 186k on the worst
    # of 4,626 nodes; on a 90-node twin the uniform floor is ~1.1%, so the
    # bound scales accordingly)
    assert shares["Memory page fault"] < 12.0 / twin_year.config.n_nodes

"""Extension X5 — power-aware scheduling (the paper's conclusion, measured).

"Aggressive power and energy aware ... scheduling policies can have impact
even on HPC deployments like Summit": a cap-admission scheduler trades
queue wait for a flattened power envelope.  This bench sweeps the cap and
reports peak power, mean wait, utilization, and the facility's overcooling
exposure (the cost driver Section 5 identifies).
"""

import time

import numpy as np

from benchutil import anchor, emit, to_mw_equiv
from repro.core.report import render_table
from repro.datasets import cluster_power_direct
from repro.frame.join import join
from repro.machine import ChipPopulation
from repro.workload import PowerAwareScheduler, schedule_jobs


def compare_engines(twin_day, machine_peak):
    """Time the tightest cap (most veto/re-scan pressure) on both engine
    paths and verify the event core changes nothing observable."""
    cat = twin_day.catalog
    cfg = twin_day.config
    horizon = twin_day.spec.horizon_s
    cap = 0.6 * machine_peak
    runs = {}
    for engine in ("reference", "event"):
        sched = PowerAwareScheduler(cap, cfg, seed=twin_day.spec.seed,
                                    engine=engine)
        t0 = time.perf_counter()
        runs[engine] = (sched.run_capped(cat, horizon),
                        time.perf_counter() - t0)
    ref, ref_t = runs["reference"]
    ev, ev_t = runs["event"]
    ident = (
        all(np.array_equal(ref.schedule.allocations[c],
                           ev.schedule.allocations[c])
            for c in ref.schedule.allocations.columns)
        and all(np.array_equal(ref.schedule.node_allocations[c],
                               ev.schedule.node_allocations[c])
                for c in ref.schedule.node_allocations.columns)
        and ref.n_power_delayed == ev.n_power_delayed
        and np.array_equal(ref.commitment[0], ev.commitment[0])
        and np.array_equal(ref.commitment[1], ev.commitment[1])
    )
    return ident, ref_t / ev_t


def run_sweep(twin_day):
    cat = twin_day.catalog
    cfg = twin_day.config
    horizon = twin_day.spec.horizon_s
    chips = ChipPopulation(cfg, seed=twin_day.spec.seed)
    machine_peak = cfg.n_nodes * cfg.node_max_power_w

    results = {}
    baseline = schedule_jobs(cat, horizon)
    for label, cap_frac in (("none", None), ("85%", 0.85), ("70%", 0.7),
                            ("60%", 0.6)):
        if cap_frac is None:
            sched = baseline
            delayed = 0
        else:
            r = PowerAwareScheduler(cap_frac * machine_peak, cfg,
                                    seed=twin_day.spec.seed).run_capped(
                cat, horizon
            )
            sched = r.schedule
            delayed = r.n_power_delayed
        _, power = cluster_power_direct(
            cat, sched, chips, horizon_s=horizon, seed=twin_day.spec.seed
        )
        al = sched.allocations
        sub = join(al, cat.table.select(["allocation_id", "submit_time"]),
                   "allocation_id", how="inner")
        wait = float((sub["begin_time"] - sub["submit_time"]).mean())
        util = float(
            (al["node_count"] * (al["end_time"] - al["begin_time"])).sum()
            / (cfg.n_nodes * horizon)
        )
        results[label] = {
            "cap_frac": cap_frac,
            "peak_w": float(power.max()),
            "mean_w": float(power.mean()),
            "wait_s": wait,
            "util": util,
            "delayed": delayed,
            "started": al.n_rows,
        }
    return results, machine_peak


def test_power_aware_scheduling(benchmark, twin_day):
    results, machine_peak = benchmark.pedantic(
        run_sweep, args=(twin_day,), rounds=1, iterations=1
    )
    rows = [
        [label,
         f"{to_mw_equiv(d['peak_w'], twin_day):.2f}",
         f"{to_mw_equiv(d['mean_w'], twin_day):.2f}",
         f"{d['wait_s'] / 60.0:.1f}", f"{d['util']:.2f}",
         d["delayed"], d["started"]]
        for label, d in results.items()
    ]
    ident, ratio = compare_engines(twin_day, machine_peak)
    emit("power_aware", "\n".join([
        render_table(
            ["cap", "peak (MW eq)", "mean (MW eq)", "mean wait (min)",
             "utilization", "power-delayed jobs", "jobs started"],
            rows,
            title="X5: power-aware scheduling vs the unconstrained baseline",
        ),
        "",
        f"engines bit-identical (schedule + cap accounting): {ident}",
        f"event/reference runtime at 60% cap: {ratio:.1f}x (floor 0.8x)",
    ]))
    assert ident
    # parity floor: at one busy day the queues are too short for the event
    # core to pull ahead — the scale regime is bench_sched_scale's job
    anchor(ratio >= 0.8, "event core at parity or better on the day twin")

    base = results["none"]
    tight = results["60%"]
    # tightening the cap flattens the peak monotonically (2% slack: a
    # loose cap reshuffles placement and chip draws without binding)
    peaks = [results[k]["peak_w"] for k in ("none", "85%", "70%", "60%")]
    assert all(a * 1.02 >= b for a, b in zip(peaks, peaks[1:]))
    # the 60% cap genuinely cuts the peak relative to baseline...
    anchor(tight["peak_w"] < 0.95 * base["peak_w"],
           "a tight cap reduces peak power")
    # ...and the bill is queue wait, not lost jobs
    anchor(tight["wait_s"] >= base["wait_s"],
           "capping increases mean queue wait")
    assert tight["delayed"] > 0

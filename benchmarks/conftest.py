"""Shared twin deployments for the benchmark harness.

Each paper experiment runs against a twin sized for it (documented in
DESIGN.md section 4).  ``REPRO_BENCH_SCALE`` (default 1.0) scales job
counts down for quick runs, e.g. ``REPRO_BENCH_SCALE=0.2 pytest benchmarks/``.

Every benchmark prints its table/figure through ``repro.core.report`` and
also writes it under ``benchmarks/output/`` so the rendered artifacts
survive pytest's capture.
"""

from __future__ import annotations

import pytest

from benchutil import SCALE, SUMMER_START_S
from repro.datasets import SimulationSpec, simulate_twin


@pytest.fixture(scope="session")
def twin_jobs():
    """Job-statistics twin (Figures 6-10, fingerprinting): two weeks of a
    busy 180-node machine."""
    return simulate_twin(
        SimulationSpec(
            n_nodes=180,
            n_jobs=max(200, int(12_000 * SCALE)),
            horizon_s=14 * 86_400.0,
            seed=101,
            utilization_hint=0.88,
        )
    )


@pytest.fixture(scope="session")
def job_series_jobs(twin_jobs):
    return twin_jobs.job_series()


@pytest.fixture(scope="session")
def job_series_components_jobs(twin_jobs):
    return twin_jobs.job_series(components=True)


@pytest.fixture(scope="session")
def twin_summer():
    """Summer twin for the edge/thermal-response studies (Figures 11-12)."""
    return simulate_twin(
        SimulationSpec(
            n_nodes=180,
            n_jobs=max(150, int(7_000 * SCALE)),
            horizon_s=8 * 86_400.0,
            seed=102,
            start_time=SUMMER_START_S,
            utilization_hint=0.88,
        )
    )


@pytest.fixture(scope="session")
def twin_year():
    """Year-long twin (Figure 5, Tables 2/4, Figures 13-16).

    Monthly 12-hour maintenance drains reproduce Figure 5's periodic
    idle-touching dips; the February drain coincides with the forced-chiller
    cooling-tower maintenance.
    """
    drains = tuple(
        (day * 86_400.0, day * 86_400.0 + 12 * 3600.0)
        for day in (36, 66, 96, 127, 157, 188, 218, 249, 280, 310, 341)
    )
    return simulate_twin(
        SimulationSpec(
            n_nodes=90,
            n_jobs=max(2_000, int(150_000 * SCALE)),
            horizon_s=365 * 86_400.0,
            seed=103,
            drain_windows=drains,
            # 10x failure intensity: the twin year has ~1.7% of Summit's
            # node-hours, so hardware-failure statistics (double-bit, page
            # retirement) would otherwise be single digits
            failure_intensity=10.0,
            # thin the submission stream to ~85% of capacity: an unbounded
            # backlog both misrepresents Summit (its queue drains) and makes
            # the scheduler's per-event queue scan quadratic
            utilization_hint=0.85,
        )
    )


@pytest.fixture(scope="session")
def twin_day():
    """One busy day at 90 nodes (validation, ablations, pipeline scaling)."""
    return simulate_twin(
        SimulationSpec(
            n_nodes=90,
            n_jobs=max(120, int(1_300 * SCALE)),
            horizon_s=86_400.0,
            seed=104,
            utilization_hint=0.85,
        )
    )


@pytest.fixture(scope="session")
def job_summary_jobs(job_series_jobs):
    """Dataset 5 analogue for the job-statistics twin."""
    from repro.core import job_power_summary

    return job_power_summary(job_series_jobs)


@pytest.fixture(scope="session")
def job_energy_jobs(job_series_jobs):
    """Dataset 7 analogue for the job-statistics twin."""
    from repro.core import job_energy

    return job_energy(job_series_jobs)


@pytest.fixture(scope="session")
def job_meta_jobs(twin_jobs, job_summary_jobs):
    """Job summaries joined with catalog metadata (class, domain, user)."""
    from repro.frame.join import join

    cat = twin_jobs.catalog.table.select(
        ["allocation_id", "sched_class", "node_count", "domain",
         "project", "user_id", "walltime_s"]
    )
    return join(job_summary_jobs, cat, "allocation_id", how="inner")

"""Extension — the query service under load: cold fan-out with fragment
reuse, warm cache leverage, tail latency, and explicit overload behavior.

A twin's raw telemetry is archived as a partitioned ``.rcs`` store and
served by an in-process :class:`~repro.serve.server.QueryService` (the
same engine ``python -m repro serve`` wraps in TCP; measuring in-process
keeps the numbers about the service, not the loopback stack).  Four
measured phases:

* **cold waves** — distinct width-aligned sliding-window queries driven
  in waves of ``c`` concurrent clients, result *and* fragment caches
  cleared before every wave.  At ``c=1`` every query pays its full
  per-shard cost; at ``c=8`` the eight overlapping windows of a wave
  share per-shard fragments (leader computes, the rest await the flight
  or hit the cache), so throughput must scale even on one core;
* **warm** — one identical query repeated by every client against a hot
  result cache: the single-flight + LRU path the "N dashboards, one hot
  store" workload lives on;
* **overlap sweep** — a sequential sweep of sliding aligned windows
  through a fragment-enabled service (caches cleared once up front) vs
  the identical sweep through a ``fragment_cache=False`` service.  The
  enabled side computes each shard fragment once and answers the rest
  by aligned slicing; every per-query answer is asserted bit-identical
  across the two services.

Deterministic phases (pinned exactly in the golden):

* **single-flight** — 12 identical concurrent cold queries must execute
  exactly once;
* **overload** — a 1-slot/1-queue service offered 16 queries by 8
  two-query tenants (quota 1) must answer every request immediately:
  2 ok (1 of them queued), 2 quota rejections, 12 capacity rejections.
  Admission decisions happen synchronously on the event loop, so the
  split is exact, not statistical.

Anchored acceptance bars (hard at full scale, advisory below):

* cold wave throughput at concurrency 8  >=  **3x** concurrency 1
  (fragment sharing, not parallelism — holds on a single core);
* the overlap sweep with fragments  >=  **5x** the sweep without, with
  every answer bit-identical;
* warm identical-query throughput at concurrency 8  >=  **5x** the cold
  single-client throughput;
* the service's full-range answer is **bit-identical** to
  ``Pipeline.telemetry_series`` over the same archive;
* overload rejections are explicit (the exact counts above) — rejected
  beats hung.
"""

import asyncio
import time

import numpy as np

from benchutil import (SCALE, TRACE_OVERHEAD_BUDGET, anchor, emit,
                       trace_overhead_pct)
from repro.core.report import render_table
from repro.obs import trace
from repro.datasets import SimulationSpec, simulate_twin
from repro.datasets.store import write_partitioned_series
from repro.pipeline import Pipeline, PipelineConfig
from repro.serve import Query, QueryService, ServiceConfig

SPEC = SimulationSpec(
    n_nodes=36,
    n_jobs=max(40, int(400 * SCALE)),
    horizon_s=max(1800.0, 3600.0 * SCALE),
    seed=205,
)
SHARD_S = 300.0
WIDTH = 10.0
CONCURRENCY = (1, 4, 8)
COLD_QUERIES = max(16, int(48 * SCALE))   # distinct windows per cold phase
WARM_QUERIES = max(64, int(256 * SCALE))  # identical queries per warm phase
SWEEP_QUERIES = max(16, int(32 * SCALE))  # sliding windows per sweep side
STRIDE = 30.0                             # window stride (multiple of WIDTH)
FLIGHT_BURST = 12                         # identical concurrent (pinned)
WARM_FLOOR = 5.0
COLD_WAVE_FLOOR = 3.0
SWEEP_FLOOR = 5.0

# window length: width-aligned, fits COLD_QUERIES strides inside the
# horizon at every scale
WINDOW_S = min(1800.0, SPEC.horizon_s / 2.0) // WIDTH * WIDTH


def build_dataset(root):
    twin = simulate_twin(SPEC)
    arrays = twin.builder.build(0.0, SPEC.horizon_s, 1.0)
    telemetry = twin.sampler().sample(arrays)
    return write_partitioned_series(telemetry, root, "telemetry",
                                    day_s=SHARD_S)


def sliding_queries(n: int, offset: float) -> list[Query]:
    """``n`` width-aligned sliding cluster windows, ``STRIDE`` apart."""
    return [
        Query(t_begin=offset + i * STRIDE,
              t_end=offset + i * STRIDE + WINDOW_S,
              width=WIDTH)
        for i in range(n)
    ]


def fragment_reuse(resp) -> tuple[int, int]:
    frag = resp.get("fragments") or {}
    return (frag.get("hits", 0) + frag.get("shared", 0),
            frag.get("misses", 0))


async def cold_waves(service, queries, concurrency):
    """Drive ``queries`` through waves of ``concurrency`` concurrent
    clients, clearing both cache tiers before every wave.

    Returns (wall seconds, per-query latencies, fragments reused).
    """
    latencies: list[float] = []
    reused = 0
    wall = 0.0
    for w in range(0, len(queries), concurrency):
        service.cache.clear()
        service.fragments.clear()
        wave = queries[w:w + concurrency]
        t0 = time.perf_counter()
        results = await asyncio.gather(*(service.query(q) for q in wave))
        wall += time.perf_counter() - t0
        for resp in results:
            assert resp["status"] == "ok", resp
            latencies.append(resp["elapsed_s"])
            reused += fragment_reuse(resp)[0]
    return wall, latencies, reused


async def warm_load(service, query, concurrency):
    """Repeat one identical query against a primed result cache."""
    latencies: list[float] = []
    hits = 0
    await service.query(query)  # prime outside the clock

    async def client(n):
        nonlocal hits
        for _ in range(n):
            resp = await service.query(query)
            assert resp["status"] == "ok", resp
            latencies.append(resp["elapsed_s"])
            if resp["cache"] == "hit":
                hits += 1

    share = WARM_QUERIES // concurrency
    t0 = time.perf_counter()
    await asyncio.gather(*(client(share) for _ in range(concurrency)))
    return time.perf_counter() - t0, latencies, hits


async def sweep(service):
    rows = []
    qps = {}
    cold_set = sliding_queries(COLD_QUERIES, 0.0)
    warm_query = Query(t_begin=0.0, t_end=SPEC.horizon_s, width=WIDTH)
    for conc in CONCURRENCY:
        wall, lat, reused = await cold_waves(service, cold_set, conc)
        qps["cold", conc] = len(cold_set) / wall
        rows.append([
            "cold", conc, len(cold_set),
            f"{qps['cold', conc]:.0f}",
            f"{np.percentile(lat, 50) * 1e3:.2f}",
            f"{np.percentile(lat, 99) * 1e3:.2f}",
            f"{reused / len(cold_set):.1f}",
        ])
    for conc in CONCURRENCY:
        wall, lat, hits = await warm_load(service, warm_query, conc)
        n = (WARM_QUERIES // conc) * conc
        qps["warm", conc] = n / wall
        rows.append([
            "warm", conc, n,
            f"{qps['warm', conc]:.0f}",
            f"{np.percentile(lat, 50) * 1e3:.2f}",
            f"{np.percentile(lat, 99) * 1e3:.2f}",
            f"{hits / n:.2f}",
        ])
    return rows, qps


async def overlap_sweep(service_on, service_off):
    """Identical sliding-window sweep with and without the fragment
    cache; answers must match bit-for-bit, query by query."""
    queries = sliding_queries(SWEEP_QUERIES, 40.0)
    walls = {}
    tables = {}
    reused = computed = 0
    for name, svc in (("off", service_off), ("on", service_on)):
        svc.cache.clear()
        svc.fragments.clear()
        out = []
        t0 = time.perf_counter()
        for q in queries:
            resp = await svc.query(q)
            assert resp["status"] == "ok", resp
            out.append(resp["table"])
            if name == "on":
                r, c = fragment_reuse(resp)
                reused += r
                computed += c
        walls[name] = time.perf_counter() - t0
        tables[name] = out
    identical = all(a == b for a, b in zip(tables["on"], tables["off"]))
    return walls["off"] / walls["on"], identical, reused, computed


async def flight_phase(service):
    """12 identical concurrent cold queries -> exactly one execution."""
    service.cache.clear()
    executed_before = service.stats.executed
    q = Query(t_begin=0.0, t_end=SPEC.horizon_s / 2.0, width=WIDTH)
    results = await asyncio.gather(
        *(service.query(q, tenant=f"dash{i}") for i in range(FLIGHT_BURST))
    )
    assert all(r["status"] == "ok" for r in results)
    return service.stats.executed - executed_before


async def overload_phase(dataset):
    """8 tenants x 2 distinct queries against a 1-slot/1-queue service."""
    service = QueryService(dataset, ServiceConfig(
        max_inflight=1, max_queue=1, tenant_inflight=1, workers=1,
    ))
    try:
        tasks = []
        k = 0
        for tenant in range(8):
            for _ in range(2):
                q = Query(t_begin=0.0, t_end=900.0, width=WIDTH + k)
                tasks.append(service.query(q, tenant=f"tenant{tenant}"))
                k += 1
        results = await asyncio.gather(*tasks)
        ok = sum(r["status"] == "ok" for r in results)
        queued = sum(r["status"] == "ok" and r["queued_s"] > 0
                     for r in results)
        adm = service.admission
        return ok, queued, adm.rejected_capacity, adm.rejected_quota
    finally:
        service.close()


def test_query_service(tmp_path):
    dataset = build_dataset(tmp_path)
    service = QueryService(dataset, ServiceConfig(
        max_inflight=8, max_queue=32, tenant_inflight=32, workers=4,
    ))
    service_off = QueryService(dataset, ServiceConfig(
        max_inflight=8, max_queue=32, tenant_inflight=32, workers=4,
        fragment_cache=False,
    ))

    async def main():
        rows, qps = await sweep(service)
        sweep_ratio, sweep_identical, reused, computed = \
            await overlap_sweep(service, service_off)
        executed = await flight_phase(service)
        # bit-identity: the service's answer vs the batch pipeline's
        full = await service.query(
            Query(t_begin=0.0, t_end=SPEC.horizon_s, width=WIDTH)
        )
        overload = await overload_phase(dataset)
        return (rows, qps, sweep_ratio, sweep_identical, reused, computed,
                executed, full, overload)

    try:
        span_calls0 = trace.disabled_span_calls()
        t0 = time.perf_counter()
        (rows, qps, sweep_ratio, sweep_identical, reused, computed,
         executed, full, overload) = asyncio.run(main())
        hot_wall = time.perf_counter() - t0
        span_calls = trace.disabled_span_calls() - span_calls0
    finally:
        service.close()
        service_off.close()
    overhead_pct = trace_overhead_pct(span_calls, hot_wall)

    pipe = Pipeline(SPEC, PipelineConfig(backend="serial"))
    reference = pipe.telemetry_series(
        dataset, value="input_power", width=WIDTH,
        t_begin=0.0, t_end=SPEC.horizon_s,
    )
    identical = full["table"] == reference

    cold_scaling = qps["cold", 8] / qps["cold", 1]
    warm_speedup = qps["warm", 8] / qps["cold", 1]
    ok, queued, rej_cap, rej_quota = overload

    main_table = render_table(
        ["phase", "clients", "queries", "qps", "p50 ms", "p99 ms",
         "hit/frag"],
        rows,
        title="Query service: cold vs warm throughput by concurrency",
    )
    footer = (
        f"\nshards: {dataset.n_partitions} x {SHARD_S:.0f}s"
        f" ({dataset.n_rows} rows archived)"
        f"\nservice == pipeline: {'yes' if identical else 'NO'}"
        f"\nfragments on == off: {'yes' if sweep_identical else 'NO'}"
        f"\nsweep fragments: reused {reused}, computed {computed}"
        f"\nsingle-flight: executed {executed} of {FLIGHT_BURST}"
        f" identical concurrent queries"
        f"\noverload: offered 16 -> ok {ok} (queued {queued}),"
        f" rejected {rej_cap + rej_quota}"
        f" (capacity {rej_cap}, quota {rej_quota})"
        f"\ncold wave @8 vs @1 throughput: {cold_scaling:.1f}x"
        f" (floor {COLD_WAVE_FLOOR:.1f}x)"
        f"\noverlap sweep with/without fragments: {sweep_ratio:.1f}x"
        f" (floor {SWEEP_FLOOR:.1f}x)"
        f"\nwarm@8 vs cold@1 throughput: {warm_speedup:.1f}x"
        f" (must be >= {WARM_FLOOR:.0f}x)"
        f"\ntracing-disabled overhead: {overhead_pct:.4f}% of service"
        f" phases over {span_calls} span calls (budget"
        f" {TRACE_OVERHEAD_BUDGET * 100:.0f}%)\n"
    )
    emit("query_service", main_table + footer)

    assert identical, "service result diverged from the batch pipeline"
    assert sweep_identical, "fragment-cached sweep diverged from uncached"
    assert executed == 1, "single-flight failed to collapse the burst"
    assert (ok, queued) == (2, 1), (ok, queued)
    assert (rej_cap, rej_quota) == (12, 2), (rej_cap, rej_quota)
    anchor(cold_scaling >= COLD_WAVE_FLOOR,
           f"cold wave scaling {cold_scaling:.1f}x < {COLD_WAVE_FLOOR}x")
    anchor(sweep_ratio >= SWEEP_FLOOR,
           f"overlap sweep leverage {sweep_ratio:.1f}x < {SWEEP_FLOOR}x")
    anchor(warm_speedup >= WARM_FLOOR,
           f"warm/cold throughput {warm_speedup:.1f}x < {WARM_FLOOR}x")
    # tracing-disabled must stay free — hard at every scale (the no-op
    # span cost does not shrink with REPRO_BENCH_SCALE)
    assert overhead_pct < TRACE_OVERHEAD_BUDGET * 100, (
        f"tracing-disabled overhead {overhead_pct:.4f}% of the service "
        f"phases exceeds the {TRACE_OVERHEAD_BUDGET:.0%} budget "
        f"({span_calls} span calls over {hot_wall:.3f}s)")

"""Extension — the query service under load: throughput, tail latency,
cache leverage, and explicit overload behavior.

A twin's raw telemetry is archived as a partitioned ``.rcs`` store and
served by an in-process :class:`~repro.serve.server.QueryService` (the
same engine ``python -m repro serve`` wraps in TCP; measuring in-process
keeps the numbers about the service, not the loopback stack).  A load
generator sweeps client concurrency for two phases:

* **cold** — distinct cluster-level queries (result cache cleared first):
  every query plans, scans its surviving shards on the worker pool, and
  aggregates;
* **warm** — one identical query repeated by every client against a hot
  cache: the single-flight + LRU path the "N dashboards, one hot store"
  workload lives on.

Deterministic phases (pinned exactly in the golden):

* **single-flight** — 12 identical concurrent cold queries must execute
  exactly once;
* **overload** — a 1-slot/1-queue service offered 16 queries by 8
  two-query tenants (quota 1) must answer every request immediately:
  2 ok (1 of them queued), 2 quota rejections, 12 capacity rejections.
  Admission decisions happen synchronously on the event loop, so the
  split is exact, not statistical.

Anchored acceptance bars (hard at full scale, advisory below):

* warm identical-query throughput at concurrency 8  >=  **5x** the cold
  single-client throughput;
* the service's full-range answer is **bit-identical** to
  ``Pipeline.telemetry_series`` over the same archive;
* overload rejections are explicit (the exact counts above) — rejected
  beats hung.
"""

import asyncio
import time

import numpy as np

from benchutil import SCALE, anchor, emit
from repro.core.report import render_table
from repro.datasets import SimulationSpec, simulate_twin
from repro.datasets.store import write_partitioned_series
from repro.pipeline import Pipeline, PipelineConfig
from repro.serve import Query, QueryService, ServiceConfig

SPEC = SimulationSpec(
    n_nodes=36,
    n_jobs=max(40, int(400 * SCALE)),
    horizon_s=max(1800.0, 3600.0 * SCALE),
    seed=205,
)
SHARD_S = 300.0
WIDTH = 10.0
CONCURRENCY = (1, 4, 8)
COLD_QUERIES = max(12, int(48 * SCALE))   # distinct windows per cold phase
WARM_QUERIES = max(64, int(256 * SCALE))  # identical queries per warm phase
FLIGHT_BURST = 12                         # identical concurrent (pinned)
SPEEDUP_FLOOR = 5.0


def build_dataset(root):
    twin = simulate_twin(SPEC)
    arrays = twin.builder.build(0.0, SPEC.horizon_s, 1.0)
    telemetry = twin.sampler().sample(arrays)
    return write_partitioned_series(telemetry, root, "telemetry",
                                    day_s=SHARD_S)


def distinct_queries(n: int) -> list[Query]:
    """n distinct sliding-window cluster queries over the archive."""
    span = SPEC.horizon_s
    qs = []
    for i in range(n):
        lo = (i * 97.0) % (span / 2.0)
        qs.append(Query(t_begin=lo, t_end=lo + span / 3.0, width=WIDTH))
    return qs


async def run_load(service, queries, concurrency):
    """Drive ``queries`` through ``concurrency`` client coroutines.

    Returns (wall seconds, per-query latencies, cache-hit count).
    """
    latencies: list[float] = []
    hits = 0

    async def client(mine):
        nonlocal hits
        for q in mine:
            resp = await service.query(q)
            assert resp["status"] == "ok", resp
            latencies.append(resp["elapsed_s"])
            if resp["cache"] == "hit":
                hits += 1

    t0 = time.perf_counter()
    await asyncio.gather(
        *(client(queries[i::concurrency]) for i in range(concurrency))
    )
    return time.perf_counter() - t0, latencies, hits


async def sweep(service):
    rows = []
    qps = {}
    cold_set = distinct_queries(COLD_QUERIES)
    warm_query = Query(t_begin=0.0, t_end=SPEC.horizon_s, width=WIDTH)
    for phase in ("cold", "warm"):
        for conc in CONCURRENCY:
            if phase == "cold":
                service.cache.clear()
                queries = cold_set
            else:
                await service.query(warm_query)  # prime outside the clock
                queries = [warm_query] * WARM_QUERIES
            wall, lat, hits = await run_load(service, queries, conc)
            qps[phase, conc] = len(queries) / wall
            rows.append([
                phase, conc, len(queries),
                f"{qps[phase, conc]:.0f}",
                f"{np.percentile(lat, 50) * 1e3:.2f}",
                f"{np.percentile(lat, 99) * 1e3:.2f}",
                f"{hits / len(queries):.2f}",
            ])
    return rows, qps


async def flight_phase(service):
    """12 identical concurrent cold queries -> exactly one execution."""
    service.cache.clear()
    executed_before = service.stats.executed
    q = Query(t_begin=0.0, t_end=SPEC.horizon_s / 2.0, width=WIDTH)
    results = await asyncio.gather(
        *(service.query(q, tenant=f"dash{i}") for i in range(FLIGHT_BURST))
    )
    assert all(r["status"] == "ok" for r in results)
    return service.stats.executed - executed_before


async def overload_phase(dataset):
    """8 tenants x 2 distinct queries against a 1-slot/1-queue service."""
    service = QueryService(dataset, ServiceConfig(
        max_inflight=1, max_queue=1, tenant_inflight=1, workers=1,
    ))
    try:
        tasks = []
        k = 0
        for tenant in range(8):
            for _ in range(2):
                q = Query(t_begin=0.0, t_end=900.0, width=WIDTH + k)
                tasks.append(service.query(q, tenant=f"tenant{tenant}"))
                k += 1
        results = await asyncio.gather(*tasks)
        ok = sum(r["status"] == "ok" for r in results)
        queued = sum(r["status"] == "ok" and r["queued_s"] > 0
                     for r in results)
        adm = service.admission
        return ok, queued, adm.rejected_capacity, adm.rejected_quota
    finally:
        service.close()


def test_query_service(tmp_path):
    dataset = build_dataset(tmp_path)
    service = QueryService(dataset, ServiceConfig(
        max_inflight=8, max_queue=32, tenant_inflight=32, workers=4,
    ))

    async def main():
        rows, qps = await sweep(service)
        executed = await flight_phase(service)
        # bit-identity: the service's answer vs the batch pipeline's
        full = await service.query(
            Query(t_begin=0.0, t_end=SPEC.horizon_s, width=WIDTH)
        )
        overload = await overload_phase(dataset)
        return rows, qps, executed, full, overload

    try:
        rows, qps, executed, full, overload = asyncio.run(main())
    finally:
        service.close()

    pipe = Pipeline(SPEC, PipelineConfig(backend="serial"))
    reference = pipe.telemetry_series(
        dataset, value="input_power", width=WIDTH,
        t_begin=0.0, t_end=SPEC.horizon_s,
    )
    identical = full["table"] == reference

    speedup = qps["warm", 8] / qps["cold", 1]
    ok, queued, rej_cap, rej_quota = overload

    main_table = render_table(
        ["phase", "clients", "queries", "qps", "p50 ms", "p99 ms", "hit"],
        rows,
        title="Query service: cold vs warm throughput by concurrency",
    )
    footer = (
        f"\nshards: {dataset.n_partitions} x {SHARD_S:.0f}s"
        f" ({dataset.n_rows} rows archived)"
        f"\nservice == pipeline: {'yes' if identical else 'NO'}"
        f"\nsingle-flight: executed {executed} of {FLIGHT_BURST}"
        f" identical concurrent queries"
        f"\noverload: offered 16 -> ok {ok} (queued {queued}),"
        f" rejected {rej_cap + rej_quota}"
        f" (capacity {rej_cap}, quota {rej_quota})"
        f"\nwarm@8 vs cold@1 throughput: {speedup:.1f}x"
        f" (must be >= {SPEEDUP_FLOOR:.0f}x)\n"
    )
    emit("query_service", main_table + footer)

    assert identical, "service result diverged from the batch pipeline"
    assert executed == 1, "single-flight failed to collapse the burst"
    assert (ok, queued) == (2, 1), (ok, queued)
    assert (rej_cap, rej_quota) == (12, 2), (rej_cap, rej_quota)
    anchor(speedup >= SPEEDUP_FLOOR,
           f"warm/cold throughput {speedup:.1f}x < {SPEEDUP_FLOOR}x")

"""Figure 8 — job max power and energy broken down by science domain
(leadership classes), as boxplot statistics."""

import numpy as np

from benchutil import anchor, emit, full_scale_ratio
from repro.core.density import boxplot_stats
from repro.core.report import render_table
from repro.frame.join import join


def domain_breakdown(job_meta, job_energy, classes=(1, 2)):
    t = join(job_meta, job_energy.select(["allocation_id", "energy"]),
             "allocation_id", how="inner")
    mask = np.isin(t["sched_class"], classes)
    t = t.filter(mask)
    out = {}
    for dom in np.unique(t["domain"]):
        sub = t.filter(t["domain"] == dom)
        if sub.n_rows < 3:
            continue
        out[str(dom)] = {
            "n": sub.n_rows,
            "power": boxplot_stats(sub["max_sum_inp"]),
            "energy": boxplot_stats(np.log10(np.maximum(sub["energy"], 1.0))),
        }
    return out


def test_fig08_domain_breakdown(benchmark, twin_jobs, job_meta_jobs, job_energy_jobs):
    out = benchmark.pedantic(
        domain_breakdown, args=(job_meta_jobs, job_energy_jobs),
        rounds=1, iterations=1,
    )
    ratio = full_scale_ratio(twin_jobs)
    rows = []
    for dom, d in sorted(out.items(), key=lambda kv: -kv[1]["power"]["median"]):
        rows.append([
            dom, d["n"],
            f"{d['power']['median'] * ratio / 1e6:.2f}",
            f"{d['power']['q1'] * ratio / 1e6:.2f}-{d['power']['q3'] * ratio / 1e6:.2f}",
            f"{d['energy']['median']:.1f}",
            f"{d['energy']['q1']:.1f}-{d['energy']['q3']:.1f}",
        ])
    emit("fig08_domains", render_table(
        ["domain", "jobs", "median maxP (MW eq)", "P IQR (MW eq)",
         "median log10 E", "E IQR (log10 J)"],
        rows,
        title="Figure 8: leadership-class power/energy by science domain",
    ))

    anchor(len(out) >= 6, "a broad domain portfolio is represented")
    # domain-dependent spread: the hottest domain's median max power is
    # well above the coolest's (paper: visible variation across domains)
    medians = [d["power"]["median"] for d in out.values()]
    anchor(max(medians) > 1.6 * min(medians),
           "median max power varies across domains")
    # energy spans orders of magnitude within domains (run-time artifact)
    spans = [d["energy"]["q3"] - d["energy"]["q1"] for d in out.values()]
    anchor(max(spans) > 0.4, "energy spans decades within domains")

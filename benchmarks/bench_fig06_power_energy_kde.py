"""Figure 6 — joint distribution of job energy vs maximum input power per
scheduling class (Gaussian KDE in log-log space)."""

import numpy as np

from benchutil import anchor, emit, full_scale_ratio
from repro.core.density import kde_2d, modality_count_2d
from repro.core.report import render_table
from repro.frame.join import join


def run_kdes(twin_jobs, job_meta, job_energy):
    t = join(job_meta, job_energy.select(["allocation_id", "energy"]),
             "allocation_id", how="inner")
    out = {}
    for cls in (1, 2, 3, 4, 5):
        sub = t.filter(t["sched_class"] == cls)
        if sub.n_rows < 5:
            continue
        kde = kde_2d(sub["energy"], sub["max_sum_inp"], n_grid=48,
                     log_x=True, log_y=True)
        out[cls] = {
            "n": sub.n_rows,
            "kde": kde,
            "energy": sub["energy"],
            "max_power": sub["max_sum_inp"],
            "modality": modality_count_2d(kde["density"]),
        }
    return out


def test_fig06_power_energy_kde(benchmark, twin_jobs, job_meta_jobs, job_energy_jobs):
    out = benchmark.pedantic(
        run_kdes, args=(twin_jobs, job_meta_jobs, job_energy_jobs),
        rounds=1, iterations=1,
    )
    ratio = full_scale_ratio(twin_jobs)
    rows = []
    for cls, d in sorted(out.items()):
        rows.append([
            cls, d["n"],
            f"{np.median(d['max_power']) * ratio / 1e6:.2f}",
            f"{np.max(d['max_power']) * ratio / 1e6:.2f}",
            f"{np.log10(np.median(d['energy'])):.1f}",
            f"{np.log10(np.max(d['energy'])):.1f}",
            d["modality"],
        ])
    emit("fig06_power_energy_kde", render_table(
        ["class", "jobs", "median maxP (MW eq)", "max maxP (MW eq)",
         "log10 median E (J)", "log10 max E (J)", "2D density modes"],
        rows,
        title="Figure 6: job energy vs max input power per scheduling class",
    ))

    # max power separates the classes with minimal overlap: the median max
    # power decreases monotonically from class 1 to class 5, by orders of
    # magnitude end to end
    medians = [np.median(out[c]["max_power"]) for c in sorted(out)]
    anchor(all(a > b for a, b in zip(medians, medians[1:])),
           "median max power decreases monotonically across classes")
    anchor(medians[0] / medians[-1] > 50.0,
           "classes separated by orders of magnitude in max power")

    # energy ranges overlap broadly: every adjacent class pair overlaps
    # (the paper's class-5..class-2 overlap needs class 5's full 45-node
    # span, which a scaled twin compresses to 1-2 nodes; adjacent overlap
    # is the scale-free form of the same statement)
    classes = sorted(out)
    for a, b in zip(classes, classes[1:]):
        anchor(
            np.quantile(out[b]["energy"], 0.95)
            > np.quantile(out[a]["energy"], 0.05),
            f"energy ranges of classes {a} and {b} overlap",
        )

    # small classes show several high-density regions in the 2-D density
    # (popular round node counts x typical energies); large classes
    # concentrate into fewer peaks (paper: "Classes 3-5 have many small
    # contour rings ... the large-scale classes have few")
    small_modes = sum(out[c]["modality"] for c in (3, 4, 5) if c in out)
    big_modes = [out[c]["modality"] for c in (1, 2) if c in out]
    anchor(any(out[c]["modality"] >= 2 for c in (3, 4, 5) if c in out),
           "small classes multi-modal in the energy-power density")
    if big_modes:
        anchor(max(big_modes) <= max(
            out[c]["modality"] for c in (3, 4, 5) if c in out
        ), "large classes concentrate into fewer peaks")

    # densities are normalized fields with structure
    for d in out.values():
        assert d["kde"]["density"].max() > 0

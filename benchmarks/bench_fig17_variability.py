"""Figure 17 — GPU power/temperature variability during a full-scale job.

A BerkeleyGW-like run is reproduced at FULL Summit scale: 4,608 of 4,626
nodes, 27,648 GPUs, ~21.5 minutes, near-constant peak GPU utilization.
The per-GPU power and core-temperature distributions, their relation, and
the cabinet-level heatmaps are evaluated at six instants, including the
paper's missing ("bright green") cabinet.
"""

import numpy as np

from benchutil import anchor, emit
from repro.config import SUMMIT
from repro.core.density import boxplot_stats
from repro.core.report import render_grid, render_series, render_table
from repro.core.spatial import cabinet_temperature_grid, spatial_locality
from repro.frame.table import Table
from repro.workload.jobs import JobCatalog
from repro.workload.scheduler import Scheduler
from repro.workload.traces import ClusterTraceBuilder
from repro.cooling.thermal import ComponentThermalModel
from repro.machine.components import ChipPopulation
from repro.machine.topology import Topology

JOB_S = 21.5 * 60.0
#: idle lead-in/out so the idle->peak transition is visible
PAD_S = 120.0


def exemplar_catalog():
    """One 4,608-node, 21.5-minute, GPU-saturating job (BerkeleyGW-like)."""
    cfg = SUMMIT
    table = Table(
        {
            "allocation_id": np.array([1], dtype=np.int64),
            "submit_time": np.array([PAD_S]),
            "node_count": np.array([4608], dtype=np.int64),
            "sched_class": np.array([1], dtype=np.int64),
            "req_walltime_s": np.array([JOB_S]),
            "walltime_s": np.array([JOB_S]),
            "domain": np.array(["MaterialsScience"]),
            "project": np.array(["MAT001"]),
            "user_id": np.array([42], dtype=np.int64),
            "gpus_used": np.array([6], dtype=np.int64),
            "kind_code": np.array([0], dtype=np.int64),  # steady, GPU-saturating
            "cpu_base": np.array([0.35]),
            "cpu_amp": np.array([0.0]),
            "gpu_base": np.array([0.93]),
            "gpu_amp": np.array([0.0]),
            "period_s": np.array([200.0]),
            "duty": np.array([0.6]),
            "phase_s": np.array([0.0]),
        }
    )
    return JobCatalog(table=table, config=cfg)


def _tercile_means(power, temp):
    """Mean temperature of the low/mid/high power terciles."""
    if power.std() == 0:
        return (float("nan"),) * 3
    q1, q2 = np.quantile(power, [1 / 3, 2 / 3])
    return (
        float(temp[power <= q1].mean()),
        float(temp[(power > q1) & (power <= q2)].mean()),
        float(temp[power > q2].mean()),
    )


def run_exemplar():
    catalog = exemplar_catalog()
    schedule = Scheduler(SUMMIT, seed=17).run(catalog, 3600.0)
    chips = ChipPopulation(SUMMIT, seed=17)
    topo = Topology(SUMMIT)
    builder = ClusterTraceBuilder(catalog, schedule, chips, seed=17)
    thermal = ComponentThermalModel(SUMMIT, chips, topo, seed=17)

    dt = 10.0
    arr = builder.build(0.0, PAD_S + JOB_S + PAD_S, dt, per_gpu=True)
    nodes = np.arange(SUMMIT.n_nodes)
    temps = thermal.gpu_temperature(nodes, arr.gpu_power_w, 21.1, dt)

    participating = np.zeros(SUMMIT.n_nodes, dtype=bool)
    participating[schedule.nodes_of(1)] = True
    # the paper's bright-green cabinet: all 18 nodes of one cabinet lose
    # telemetry for the duration of the job
    missing_nodes = topo.nodes_of_cabinet(100)

    # six instants across the run (the paper's 15:10..15:16 columns)
    instants = np.linspace(PAD_S * 0.5, PAD_S + JOB_S + PAD_S * 0.5, 6)
    idx = np.searchsorted(arr.times, instants)

    per_instant = []
    for k in idx:
        gp = arr.gpu_power_w[participating, :, k].ravel()
        gt = temps[participating, :, k].ravel()
        grids = cabinet_temperature_grid(
            topo, temps[:, :, k], participating=participating,
            missing_nodes=missing_nodes,
        )
        per_instant.append({
            "t": float(arr.times[k]),
            "power": boxplot_stats(gp),
            "temp": boxplot_stats(gt),
            "corr": float(np.corrcoef(gp, gt)[0, 1]) if gp.std() > 0 else 0.0,
            "tercile_temps": _tercile_means(gp, gt),
            "grids": grids,
            "frac_below_60": float((gt < 60.0).mean()),
        })
    return arr, temps, per_instant, participating


def test_fig17_variability(benchmark):
    arr, temps, per_instant, participating = benchmark.pedantic(
        run_exemplar, rounds=1, iterations=1
    )
    rows = []
    for d in per_instant:
        rows.append([
            f"{d['t']:.0f}", f"{d['power']['median']:.0f}",
            f"{d['power']['spread']:.0f}", f"{d['temp']['median']:.1f}",
            f"{d['temp']['spread']:.1f}", f"{d['corr']:.2f}",
            f"{d['frac_below_60']:.1%}",
            f"{spatial_locality(d['grids']['mean'])['row_variance_share']:.2f}",
        ])
    lines = [
        render_table(
            ["t (s)", "med GPU W", "W spread", "med temp C", "temp spread C",
             "power-temp corr", "GPUs <60C", "row-var share"],
            rows,
            title=(
                "Figure 17: 27,648-GPU exemplar job (4,608 nodes, 21.5 min)"
                " — per-instant distributions"
            ),
        ),
        "",
        render_series("cluster power (MW)", arr.cluster_power_w() / 1e6, "MW"),
        render_series("mean GPU temp (C)",
                      temps[participating].mean(axis=(0, 1))),
        "",
        render_grid(
            per_instant[2]["grids"]["mean"],
            title="cabinet mean GPU temperature at mid-run (Summit floor)",
            missing_mask=per_instant[2]["grids"]["missing"],
        ),
        render_grid(
            per_instant[2]["grids"]["max"],
            title="cabinet max GPU temperature at mid-run",
            missing_mask=per_instant[2]["grids"]["missing"],
        ),
    ]
    emit("fig17_variability", "\n".join(lines))

    # transition idle -> near-peak within tens of seconds (paper: <30 s)
    p = arr.cluster_power_w()
    lo, hi = p.min(), p.max()
    i_start = np.flatnonzero(p > lo + 0.1 * (hi - lo))[0]
    i_peak = np.flatnonzero(p > lo + 0.9 * (hi - lo))[0]
    assert (arr.times[i_peak] - arr.times[i_start]) <= 60.0

    peak = per_instant[2]  # mid-run instant
    # non-outlier GPU power spread ~62 W, temperature spread ~15.8 C
    assert 30.0 < peak["power"]["spread"] < 110.0
    assert 8.0 < peak["temp"]["spread"] < 25.0
    # temperature depends on power monotonically: hotter terciles of the
    # power distribution run measurably warmer.  (The correlation is
    # moderate, not tight: the paper itself reports a 15.8 degC temperature
    # spread against only 62 W of power spread — chip thermal resistance,
    # not power, carries most of the variance.)
    lo_t, mid_t, hi_t = peak["tercile_temps"]
    assert lo_t < mid_t < hi_t
    assert peak["corr"] > 0.15
    # the vast majority of GPUs stay below 60 C despite full load
    assert peak["frac_below_60"] > 0.9
    # spatial: heat is quite even at peak (row share small but nonzero)
    loc = spatial_locality(peak["grids"]["mean"])
    assert loc["row_variance_share"] < 0.6
    # the missing cabinet renders as exactly one green cell; non-participating
    # nodes are scattered (no fully grey cabinet beyond floor-grid padding)
    assert peak["grids"]["missing"].sum() == 1
    # temps follow power down after the job ends
    end_temp = temps[participating].mean(axis=(0, 1))[-1]
    mid_temp = temps[participating].mean(axis=(0, 1))[len(arr.times) // 2]
    assert end_temp < mid_temp - 5.0

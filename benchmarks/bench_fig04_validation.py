"""Figure 4 — power meter vs per-node sensor summation at scale.

Six hours of 1 Hz telemetry on the day twin, coarsened to 10 s means per
MSB exactly as Section 3 describes, compared against the switchboard
meters.
"""

import numpy as np

from benchutil import anchor, emit
from repro.core.report import render_series, render_table
from repro.core.validation import msb_validation


def run_validation(twin_day):
    n = twin_day.config.n_nodes
    arr = twin_day.builder.build(6 * 3600.0, 12 * 3600.0, 1.0)
    tel = twin_day.sampler().sample(arr)

    meter_1hz = twin_day.msb.measure(arr.node_input_w)
    meter_10s = meter_1hz.reshape(twin_day.topology.n_msbs, -1, 10).mean(axis=2)
    node_meas = tel["input_power"].reshape(n, -1)
    node_10s = node_meas.reshape(n, -1, 10).mean(axis=2)
    summ_10s = twin_day.msb.node_summation(node_10s)
    return msb_validation(meter_10s, summ_10s), meter_10s, summ_10s


def test_fig04_msb_validation(benchmark, twin_day):
    out, meter, summ = benchmark.pedantic(
        run_validation, args=(twin_day,), rounds=1, iterations=1
    )
    per = out["per_msb"]
    rows = [
        [str(per["msb"][i]), f"{per['mean_diff_w'][i] / 1e3:.2f}",
         f"{per['std_diff_w'][i] / 1e3:.2f}",
         f"{per['relative_diff'][i]:.1%}",
         f"{per['phase_corr'][i]:.2f}",
         f"{per['amplitude_ratio'][i]:.2f}"]
        for i in range(per.n_rows)
    ]
    lines = [
        render_table(
            ["MSB", "mean diff (kW)", "std (kW)", "rel diff",
             "phase corr", "amp ratio"],
            rows,
            title="Figure 4: per-node summation vs MSB meters (10 s means)",
        ),
        "",
        f"Mean diff (all MSBs): {out['mean_diff_w'] / 1e3:.2f} kW "
        f"({out['relative_diff']:.1%} of metered power; paper: -128.83 kW, ~11%)",
        render_series("meter MSB A", meter[0], "W"),
        render_series("summation MSB A", summ[0], "W"),
    ]
    emit("fig04_validation", "\n".join(lines))

    # summation sits systematically below the meter, ~11%
    assert out["mean_diff_w"] < 0
    assert 0.05 < out["relative_diff"] < 0.18
    # per-MSB means differ (the paper's "external factor")
    assert np.std(per["mean_diff_w"]) > 0
    # in phase with matching amplitude — judged on MSBs whose load swing
    # actually exceeds the meter noise floor
    noise = twin_day.msb.meter_noise_w
    swing = np.array([np.diff(summ[m]).std() for m in range(summ.shape[0])])
    live = swing > 2.0 * noise
    anchor(live.any(), "at least one MSB carries a live swing")
    if live.any():
        assert np.nanmean(per["phase_corr"][live]) > 0.4
        assert 0.5 < np.nanmean(per["amplitude_ratio"][live]) < 1.5
    # the diff distribution is tight around its mean (paper: low std)
    assert np.all(per["std_diff_w"] < 0.3 * np.abs(per["mean_meter_w"]))

"""Figure 16 — GPU failure counts per component placement (slot 0-5)."""

import numpy as np

from benchutil import anchor, emit
from repro.core.reliability import slot_counts
from repro.core.report import render_hist
from repro.failures.xid import XID_TYPES
from repro.machine.topology import GPU_COOLING_POSITION

_IDX = {t.name: i for i, t in enumerate(XID_TYPES)}


def test_fig16_slot_placement(benchmark, twin_year):
    out = benchmark.pedantic(
        slot_counts, args=(twin_year.failures,), rounds=1, iterations=1
    )
    m = out["matrix"]
    blocks = []
    for name in ("Page retirement event", "Double-bit error",
                 "Internal microcontroller warning", "Fallen off the bus"):
        i = _IDX[name]
        blocks.append(render_hist(
            [f"GPU {s}" for s in range(6)], m[i], title=name
        ))
    blocks.append(render_hist(
        [f"GPU {s}" for s in range(6)], m.sum(axis=0), title="All failure types"
    ))
    emit("fig16_slot_placement", "\n\n".join(blocks))

    total = m.sum(axis=0)
    # overall exposure peaks on GPU 0 (single-GPU jobs)
    anchor(total[0] == total.max(), "GPU 0 carries the most failures overall")

    # the naive cooling-order expectation (failures increase 0->1->2 along
    # the water path) does NOT hold — the observed trend is near-reverse
    pos0 = total[[0, 3]].sum()  # first in the water path
    pos2 = total[[2, 5]].sum()  # last in the water path
    anchor(pos0 >= pos2, "failures do not increase along the cooling order")

    # GPU-4 bumps for double-bit errors and page retirement events (an
    # argmax over 6 slots needs real counts before it stabilizes)
    for name in ("Double-bit error", "Page retirement event"):
        row = m[_IDX[name]]
        if row.sum() >= 80:
            anchor(row[4] == row[1:].max(),
                   f"{name}: GPU 4 spike among slots 1-5")

"""Extension X3 — pipeline throughput: partition-parallel coarsening.

The Dask-substitute executor maps the 10-second coarsening over day shards;
thread parallelism must beat serial execution on the same shards (the numpy
reductions release the GIL).
"""

import time

import numpy as np

from benchutil import emit
from repro.core.coarsen import coarsen_telemetry
from repro.core.report import render_table
from repro.frame.table import Table
from repro.parallel import Executor, PartitionedDataset, grouped_aggregate, map_partitions


def _coarsen_shard(table: Table) -> Table:
    return coarsen_telemetry(table, ["input_power"], width=10.0)


def build_shards(twin_day, tmp_dir, n_shards=8):
    ds = PartitionedDataset.create(tmp_dir / "telemetry", "telemetry-1hz")
    span = 900.0  # 15-minute shards of 1 Hz data
    for i in range(n_shards):
        t0 = 6 * 3600.0 + i * span
        arr = twin_day.builder.build(t0, t0 + span, 1.0)
        tel = twin_day.sampler().sample(arr)
        ds.append(tel, t0, t0 + span)
    return ds


def test_pipeline_scaling(benchmark, twin_day, tmp_path):
    ds = build_shards(twin_day, tmp_path)

    def serial():
        return map_partitions(ds, _coarsen_shard, Executor(backend="serial"))

    def threaded():
        return map_partitions(ds, _coarsen_shard, Executor(backend="threads",
                                                           max_workers=4))

    t0 = time.perf_counter()
    out_serial = serial()
    t_serial = time.perf_counter() - t0

    out_threads = benchmark.pedantic(threaded, rounds=1, iterations=1)
    t_threads = benchmark.stats["mean"]

    # distributed group-by over the same shards
    agg = grouped_aggregate(ds, ["node"], "input_power",
                            Executor(backend="threads", max_workers=4))

    emit("pipeline_scaling", render_table(
        ["variant", "shards", "rows in", "rows out", "seconds"],
        [
            ["serial", ds.n_partitions, ds.n_rows,
             sum(t.n_rows for t in out_serial), f"{t_serial:.3f}"],
            ["threads x4", ds.n_partitions, ds.n_rows,
             sum(t.n_rows for t in out_threads), f"{t_threads:.3f}"],
        ],
        title="X3: partition-parallel 10 s coarsening of 1 Hz telemetry",
    ))

    # identical results regardless of execution backend
    assert sum(t.n_rows for t in out_serial) == sum(t.n_rows for t in out_threads)
    for a, b in zip(out_serial, out_threads):
        assert np.allclose(a["input_power_mean"], b["input_power_mean"])
    # the distributed aggregate covers every node
    assert agg.n_rows == twin_day.config.n_nodes
    # threads should not be drastically slower than serial (GIL released);
    # speedups depend on the box, so only guard against pathology
    assert t_threads < 2.0 * t_serial

"""Extension X3 — pipeline throughput: partition-parallel coarsening.

The Dask-substitute executor maps the 10-second coarsening over archive
shards stored in the partition layout (node-major, time-ascending — exactly
how the paper's parquet files are laid out).  Variants, all producing
bit-identical output from the same on-disk dataset:

* ``single-pass``  — the pre-optimization reference: read everything into
  one table, generic factorize+argsort group-by kernel, one thread;
* ``serial``       — the same generic kernel mapped shard-by-shard;
* ``sorted``       — the run-length sorted-path kernel (auto-probed), one
  thread: no factorize, no argsort, no gather;
* ``threads x4``   — sorted kernel fanned out on the thread pool;
* ``processes x4`` — sorted kernel on the process pool; shards and results
  cross via ``multiprocessing.shared_memory`` instead of the pipe;
* ``fused x4``     — telemetry -> cluster series with read+coarsen+aggregate
  fused into one task per shard on the process pool: workers read their own
  shard and only the tiny per-window series crosses back;
* ``unfused x4``   — the same series with separate coarsen and aggregate
  fan-outs, the full telemetry and coarse intermediates crossing the
  executor boundary both ways.

Every variant's output is asserted **bit-identical** to the single-pass
baseline's; the kernel microbenchmark below the main table does the same on
one day of 100-node telemetry (the paper-scale unit the ISSUE anchors to).

Process-backend overhead note (profiled on the reference 1-core CI box):
the fixed costs are small — forking a 4-worker pool costs ~20 ms and the
shared-memory transport ~30 ms for all 8 shards — so nearly all of the
processes-vs-threads gap is *oversubscription*: four forked workers
time-slicing one core while the GIL-releasing numpy kernels would already
saturate it from a single thread, plus copy-on-write faults as each worker
touches the forked parent heap.  That cost is intrinsic to the box, not a
transport regression, so instead of "fixing" it the bench pins the ratio:
``t_procs <= PROC_OVERHEAD_BUDGET * t_threads`` (golden ratio ~2.2x).  A
silent transport regression — say, results falling off the shm path onto
the pickle pipe — would blow the budget and fail the anchor.
"""

import time

import numpy as np

from benchutil import (SCALE, TRACE_OVERHEAD_BUDGET, anchor, emit,
                       trace_overhead_pct)
from repro.core.aggregate import cluster_power_series
from repro.core.coarsen import coarsen_telemetry
from repro.core.report import render_table
from repro.frame.table import Table, concat
from repro.frame.window import window_aggregate
from repro.obs import trace
from repro.parallel import Executor, PartitionedDataset, grouped_aggregate, map_partitions
from repro.pipeline import Pipeline, PipelineConfig

# Regression budget for the process backend relative to threads on the same
# workload (see the overhead note in the module docstring).  The golden run
# sits near 2.2x; the slack covers scheduler jitter, not a slower transport.
PROC_OVERHEAD_BUDGET = 2.5


def _coarsen_shard(table: Table) -> Table:
    return coarsen_telemetry(table, ["input_power"], width=10.0)


def _coarsen_shard_generic(table: Table) -> Table:
    return coarsen_telemetry(table, ["input_power"], width=10.0, presorted=False)


def build_dataset(twin_day, tmp_dir, n_shards=8):
    """Write ``n_shards`` archive shards that cleanly partition the window
    grid: collector-delay spillover past each span is clipped so every
    (node, window) pair lives in exactly one shard."""
    ds = PartitionedDataset.create(tmp_dir / "telemetry", "telemetry-1hz")
    span = max(900.0, 10_800.0 * SCALE)  # full scale: 8 x 3 h = one day
    for i in range(n_shards):
        t0 = i * span
        arr = twin_day.builder.build(t0, t0 + span, 1.0)
        tel = twin_day.sampler().sample(arr)
        t = tel["timestamp"]
        tel = tel.filter((t >= t0) & (t < t0 + span))
        # archive layout: node-major, per-node time ascending
        ds.append(tel.sort(["node", "timestamp"]), t0, t0 + span)
    return ds, span


def _assert_tables_identical(a, b, label):
    assert a.columns == b.columns, label
    assert a.n_rows == b.n_rows, label
    for c in a.columns:
        assert a[c].dtype == b[c].dtype, (label, c)
        assert np.array_equal(a[c], b[c]), (label, c)


def _kernel_comparison():
    """Sorted vs generic windowed group-by on 1 day x 100 nodes of 1 Hz
    archive-sorted telemetry (scaled by REPRO_BENCH_SCALE)."""
    n_nodes = 100
    n_t = max(3600, int(86_400 * SCALE))
    rng = np.random.default_rng(7)
    tel = Table({
        "node": np.repeat(np.arange(n_nodes, dtype=np.int64), n_t),
        "timestamp": np.tile(np.arange(n_t, dtype=np.float64), n_nodes),
        "input_power": rng.normal(2200.0, 150.0, n_nodes * n_t),
    })
    kw = dict(time="timestamp", width=10.0, values=["input_power"], by=["node"])

    t0 = time.perf_counter()
    generic = window_aggregate(tel, presorted=False, **kw)
    t_generic = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = window_aggregate(tel, presorted=True, **kw)
    t_sorted = time.perf_counter() - t0
    _assert_tables_identical(generic, fast, "kernel")
    return tel.n_rows, generic.n_rows, t_generic, t_sorted


def test_pipeline_scaling(benchmark, twin_day, tmp_path):
    ds, span = build_dataset(twin_day, tmp_path)

    # pre-optimization reference: one read, one generic-kernel pass
    t0 = time.perf_counter()
    full = ds.to_table()
    coarse_single = coarsen_telemetry(full, ["input_power"], width=10.0,
                                      presorted=False)
    series_single = cluster_power_series(coarse_single)
    t_single = time.perf_counter() - t0

    def run(executor, fn=_coarsen_shard):
        t0 = time.perf_counter()
        out = map_partitions(ds, fn, executor)
        return out, time.perf_counter() - t0

    span_calls0 = trace.disabled_span_calls()
    out_serial, t_serial = run(Executor(backend="serial"),
                               _coarsen_shard_generic)
    out_sorted, t_sorted = run(Executor(backend="serial"))
    out_threads, _ = benchmark.pedantic(
        lambda: run(Executor(backend="threads", max_workers=4)),
        rounds=1, iterations=1,
    )
    t_threads = benchmark.stats["mean"]
    out_procs, t_procs = run(Executor(backend="processes", max_workers=4))

    # identical results regardless of kernel route or execution backend ...
    for out, label in ((out_sorted, "sorted"), (out_threads, "threads"),
                       (out_procs, "processes")):
        assert len(out) == len(out_serial)
        for a, b in zip(out_serial, out):
            _assert_tables_identical(a, b, label)
    # ... and the stitched shards reproduce the single pass bit-for-bit
    _assert_tables_identical(concat(out_serial).sort(["node", "timestamp"]),
                             coarse_single.sort(["node", "timestamp"]),
                             "chunked vs single-pass")

    # fused vs unfused telemetry -> cluster series from the same dataset
    pipe_fused = Pipeline(twin_day, PipelineConfig(
        chunk_seconds=span, backend="processes", max_workers=4, fuse=True))
    pipe_unfused = Pipeline(twin_day, PipelineConfig(
        chunk_seconds=span, backend="processes", max_workers=4, fuse=False))
    t0 = time.perf_counter()
    series_fused = pipe_fused.telemetry_series(ds, ["input_power"])
    t_fused = time.perf_counter() - t0
    t0 = time.perf_counter()
    series_unfused = pipe_unfused.telemetry_series(ds, ["input_power"])
    t_unfused = time.perf_counter() - t0
    _assert_tables_identical(series_fused, series_single, "fused")
    _assert_tables_identical(series_unfused, series_single, "unfused")

    # tracing-disabled overhead over the instrumented hot path: every
    # span() the executor/pipeline took above was the no-op fast path;
    # charge each at its measured per-call cost against the phase wall
    hot_wall = t_serial + t_sorted + t_threads + t_procs + t_fused + t_unfused
    span_calls = trace.disabled_span_calls() - span_calls0
    overhead_pct = trace_overhead_pct(span_calls, hot_wall)

    # distributed group-by over the same shards
    agg = grouped_aggregate(ds, ["node"], "input_power",
                            Executor(backend="threads", max_workers=4))

    k_rows_in, k_rows_out, k_generic, k_sorted = _kernel_comparison()

    coarse_rows = sum(t.n_rows for t in out_serial)
    main = render_table(
        ["variant", "shards", "rows in", "rows out", "seconds"],
        [
            ["single-pass", 1, ds.n_rows, series_single.n_rows,
             f"{t_single:.3f}"],
            ["serial", ds.n_partitions, ds.n_rows, coarse_rows,
             f"{t_serial:.3f}"],
            ["sorted", ds.n_partitions, ds.n_rows, coarse_rows,
             f"{t_sorted:.3f}"],
            ["threads x4", ds.n_partitions, ds.n_rows, coarse_rows,
             f"{t_threads:.3f}"],
            ["processes x4", ds.n_partitions, ds.n_rows, coarse_rows,
             f"{t_procs:.3f}"],
            ["fused x4", ds.n_partitions, ds.n_rows,
             series_fused.n_rows, f"{t_fused:.3f}"],
            ["unfused x4", ds.n_partitions, ds.n_rows,
             series_unfused.n_rows, f"{t_unfused:.3f}"],
        ],
        title="X3: partition-parallel 10 s coarsening of 1 Hz telemetry",
    )
    kernel = render_table(
        ["kernel", "rows in", "rows out", "seconds"],
        [
            ["generic", k_rows_in, k_rows_out, f"{k_generic:.3f}"],
            ["sorted-path", k_rows_in, k_rows_out, f"{k_sorted:.3f}"],
        ],
        title=f"window_aggregate kernels, 1 day x 100 nodes (scale {SCALE:g})",
    )
    proc_ratio = t_procs / t_threads
    emit("pipeline_scaling",
         main
         + "\nall variants bit-identical: yes"
         + f"\nprocesses/threads ratio: {proc_ratio:.2f}x"
         f" (budget {PROC_OVERHEAD_BUDGET:.1f}x)"
         + f"\ntracing-disabled overhead: {overhead_pct:.4f}% of hot path"
         f" over {span_calls} span calls (budget"
         f" {TRACE_OVERHEAD_BUDGET * 100:.0f}%)\n\n"
         + kernel)

    # the distributed aggregate covers every node
    assert agg.n_rows == twin_day.config.n_nodes
    # threads should not be drastically slower than serial (GIL released);
    # speedups depend on the box, so only guard against pathology
    assert t_threads < 2.0 * t_serial
    # pin the process-backend overhead (docstring note): the fixed costs
    # are tens of ms, so only a transport regression can blow this budget
    anchor(t_procs <= PROC_OVERHEAD_BUDGET * t_threads,
           f"process-backend overhead ratio {proc_ratio:.2f}x exceeds "
           f"budget {PROC_OVERHEAD_BUDGET:.1f}x "
           f"({t_procs:.3f}s vs {t_threads:.3f}s threads)")
    # ISSUE X3 anchors (hard at full scale, advisory below it): the sorted
    # kernel halves the generic one on the paper-scale unit, and the fused
    # process pipeline halves the single-pass serial reference end to end
    anchor(k_sorted * 2.0 <= k_generic,
           f"sorted kernel >= 2x generic ({k_generic:.3f}s vs {k_sorted:.3f}s)")
    anchor(t_sorted < t_serial,
           f"sorted coarsen beats generic on shards "
           f"({t_serial:.3f}s vs {t_sorted:.3f}s)")
    anchor(t_fused * 2.0 <= t_single,
           f"fused processes x4 >= 2x single-pass serial "
           f"({t_single:.3f}s vs {t_fused:.3f}s)")
    anchor(t_fused <= t_unfused,
           f"fusion regression ({t_fused:.3f}s vs {t_unfused:.3f}s)")
    # tracing-disabled must stay free — hard at every scale (the no-op
    # span cost does not shrink with REPRO_BENCH_SCALE)
    assert overhead_pct < TRACE_OVERHEAD_BUDGET * 100, (
        f"tracing-disabled overhead {overhead_pct:.4f}% of the hot path "
        f"exceeds the {TRACE_OVERHEAD_BUDGET:.0%} budget "
        f"({span_calls} span calls over {hot_wall:.3f}s)")

"""Figure 7 — CDFs of leadership-class job features.

For classes 1 and 2: node count, wall time, mean power, max power, and the
max-mean power difference, with the paper's 80th-percentile anchors.
"""

import numpy as np

from benchutil import anchor, emit, full_scale_ratio
from repro.core.density import quantiles
from repro.core.report import render_cdf_quantiles


def collect_features(job_meta):
    out = {}
    for cls in (1, 2):
        sub = job_meta.filter(job_meta["sched_class"] == cls)
        out[cls] = {
            "node_count": sub["node_count"].astype(float),
            "walltime_h": sub["walltime_s"] / 3600.0,
            "mean_power": sub["mean_sum_inp"],
            "max_power": sub["max_sum_inp"],
            "diff_power": sub["max_sum_inp"] - sub["mean_sum_inp"],
        }
    return out


def test_fig07_job_cdfs(benchmark, twin_jobs, job_meta_jobs):
    feats = benchmark.pedantic(
        collect_features, args=(job_meta_jobs,), rounds=1, iterations=1
    )
    ratio = full_scale_ratio(twin_jobs)
    cfg = twin_jobs.config
    classes = {c.index: c for c in cfg.scheduling_classes()}

    lines = ["Figure 7: CDFs of job features (classes 1 and 2)"]
    for cls in (1, 2):
        f = feats[cls]
        lines.append(f"-- class {cls} ({len(f['node_count'])} jobs) --")
        lines.append(render_cdf_quantiles("num nodes", f["node_count"]))
        lines.append(render_cdf_quantiles("wall time (h)", f["walltime_h"]))
        lines.append(render_cdf_quantiles(
            "mean power (MW eq)", f["mean_power"] * ratio / 1e6))
        lines.append(render_cdf_quantiles(
            "max power (MW eq)", f["max_power"] * ratio / 1e6))
        lines.append(render_cdf_quantiles(
            "max-mean (MW eq)", f["diff_power"] * ratio / 1e6))
    emit("fig07_job_cdfs", "\n".join(lines))

    c1, c2 = feats[1], feats[2]
    hi1 = classes[1].max_nodes

    # class 1: >60% of jobs in the upper node band; class 2: 80% below the
    # "1500 of 2764" analogue
    anchor((c1["node_count"] > 0.85 * hi1).mean() > 0.55,
           "class 1 concentrated in the upper node band")
    frac_1500 = (1500 - 922) / (2764 - 922)
    cls2 = classes[2]
    c2_cut = cls2.min_nodes + frac_1500 * (cls2.max_nodes - cls2.min_nodes)
    anchor((c2["node_count"] < c2_cut).mean() > 0.65,
           "80% of class 2 below the 1500-node analogue")

    # walltime: 80% of class 1 under ~43 min; class 2 under ~3 h; class 2
    # runs longer than class 1
    anchor(np.quantile(c1["walltime_h"], 0.8) < 1.1,
           "class 1 p80 walltime under ~1 h (paper: 43 min)")
    anchor(1.5 < np.quantile(c2["walltime_h"], 0.8) < 5.0,
           "class 2 p80 walltime near 3 h")
    anchor(np.quantile(c2["walltime_h"], 0.8) > np.quantile(c1["walltime_h"], 0.8),
           "class 2 runs longer than class 1")

    # max power: p80 ratio between classes ~4x (paper: 6.6 vs 1.6 MW), and
    # extremes reach much higher (paper: 10.7 vs 5.6 MW)
    p80_1 = np.quantile(c1["max_power"], 0.8) * ratio / 1e6
    p80_2 = np.quantile(c2["max_power"], 0.8) * ratio / 1e6
    anchor(4.0 < p80_1 < 9.5, f"class 1 p80 max power ~6.6 MW (got {p80_1:.1f})")
    anchor(0.8 < p80_2 < 3.2, f"class 2 p80 max power ~1.6 MW (got {p80_2:.1f})")
    anchor(c1["max_power"].max() * ratio / 1e6 > 8.0,
           "largest class 1 job approaches 10.7 MW")

    # max-mean difference varies more for class 1 than class 2
    anchor(c1["diff_power"].std() > c2["diff_power"].std(),
           "class 1 max-mean spread exceeds class 2's")

"""Figure 12 — component temperatures and cooling-plant response around
large rising and falling edges (summer)."""

import numpy as np

from benchutil import anchor, emit, full_scale_ratio, to_mw_equiv
from repro.core.edges import detect_edges, extract_snapshot, superimpose
from repro.core.lag import estimate_lag_s
from repro.core.report import render_series


def run_thermal_response(twin_summer):
    dt = 10.0
    cfg = twin_summer.config
    times, power = twin_summer.cluster_power(dt=dt)
    st = twin_summer.plant.simulate(times + twin_summer.spec.start_time, power)
    ratio = full_scale_ratio(twin_summer)

    # measured staging lag over the whole window (the "roughly one minute")
    tons_w = (st.tower_tons + st.chiller_tons) * 3517.0
    staging_lag_s, staging_corr = estimate_lag_s(
        power, tons_w, dt=dt, max_lag_s=600.0
    )

    # edges of >= ~3 MW full-scale equivalent
    edges = detect_edges(times, power, threshold_w=3.0e6 / ratio)
    nodes = np.arange(cfg.n_nodes)

    before, after = 60.0, 240.0

    def window_components(t_edge):
        t0 = max(0.0, t_edge - before)
        t1 = min(times[-1], t_edge + after)
        arr = twin_summer.builder.build(t0, t1 + dt, dt, per_gpu=True)
        i0 = int(np.searchsorted(st.times - twin_summer.spec.start_time, t0))
        supply = st.mtw_supply_c[i0: i0 + arr.n_times]
        supply = np.resize(supply, arr.n_times)
        gpu_t = twin_summer.thermal.gpu_temperature(nodes, arr.gpu_power_w, supply, dt)
        cpu_power = arr.node_cpu_w[:, None, :] / cfg.cpus_per_node
        cpu_t = twin_summer.thermal.cpu_temperature(
            nodes, np.repeat(cpu_power, cfg.cpus_per_node, axis=1), supply, dt
        )
        return {
            "gpu_mean": gpu_t.mean(axis=(0, 1)),
            "gpu_max": gpu_t.max(axis=(0, 1)),
            "cpu_mean": cpu_t.mean(axis=(0, 1)),
            "cpu_max": cpu_t.max(axis=(0, 1)),
            "times": arr.times,
        }

    out = {}
    for direction, name in ((1, "rising"), (-1, "falling")):
        sel = edges.filter(edges["direction"] == direction)
        snaps: dict[str, list] = {k: [] for k in (
            "power", "pue", "gpu_mean", "gpu_max", "cpu_mean", "cpu_max",
            "mtw_return", "mtw_supply", "tons",
        )}
        count = 0
        for i in range(min(sel.n_rows, 6)):  # a handful of edges suffices
            t_edge = float(sel["time"][i])
            comp = window_components(t_edge)
            grid = comp["times"]
            for key in ("gpu_mean", "gpu_max", "cpu_mean", "cpu_max"):
                snaps[key].append(
                    extract_snapshot(grid, comp[key], t_edge, before, after)
                )
            snaps["power"].append(extract_snapshot(times, power, t_edge, before, after))
            snaps["pue"].append(extract_snapshot(times, st.pue, t_edge, before, after))
            snaps["mtw_return"].append(
                extract_snapshot(times, st.mtw_return_c, t_edge, before, after))
            snaps["mtw_supply"].append(
                extract_snapshot(times, st.mtw_supply_c, t_edge, before, after))
            snaps["tons"].append(extract_snapshot(
                times, st.tower_tons + st.chiller_tons, t_edge, before, after))
            count += 1
        if count:
            out[name] = {
                "count": count,
                **{k: superimpose(np.array(v)) for k, v in snaps.items()},
            }
    return out, staging_lag_s, staging_corr


def test_fig12_thermal_response(benchmark, twin_summer):
    out, staging_lag_s, staging_corr = benchmark.pedantic(
        run_thermal_response, args=(twin_summer,), rounds=1, iterations=1
    )
    lines = ["Figure 12: component temperatures and cooling response at edges",
             "(-1 min .. +4 min around each edge; summer twin)",
             f"measured staging lag: {staging_lag_s:.0f} s "
             f"(corr {staging_corr:.2f}; paper: 'roughly one minute')", ""]
    for name, d in out.items():
        lines.append(f"-- {name} edges (n={d['count']}) --")
        lines.append(render_series("power (MW eq)",
                                   to_mw_equiv(d["power"]["mean"], twin_summer), "MW"))
        lines.append(render_series("PUE", d["pue"]["mean"]))
        lines.append(render_series("GPU temp mean (C)", d["gpu_mean"]["mean"]))
        lines.append(render_series("GPU temp max (C)", d["gpu_max"]["mean"]))
        lines.append(render_series("CPU temp mean (C)", d["cpu_mean"]["mean"]))
        lines.append(render_series("MTW return (C)", d["mtw_return"]["mean"]))
        lines.append(render_series("MTW supply (C)", d["mtw_supply"]["mean"]))
        lines.append(render_series("cooling tons", d["tons"]["mean"]))
    emit("fig12_thermal_response", "\n".join(lines))

    anchor("rising" in out, "rising edges observed in the summer window")
    # the cross-correlation lag lands near the paper's "roughly one minute"
    if np.isfinite(staging_lag_s):
        anchor(20.0 <= staging_lag_s <= 180.0,
               f"staging lag ~1 minute (got {staging_lag_s:.0f} s)")
    if "rising" not in out:
        return
    r = out["rising"]
    edge_idx = 6  # -1 min of 10 s samples before the edge

    # GPU temperature follows the power swing within seconds
    gpu = r["gpu_mean"]["mean"]
    assert np.nanmax(gpu[edge_idx:]) > np.nanmean(gpu[:edge_idx]) + 2.0

    # CPU temperature stays comparatively flat
    cpu = r["cpu_mean"]["mean"]
    gpu_swing = np.nanmax(gpu) - np.nanmin(gpu)
    cpu_swing = np.nanmax(cpu) - np.nanmin(cpu)
    assert gpu_swing > 2.0 * cpu_swing

    # the cooling response lags the load by about a minute: tons have moved
    # little 30 s after the edge but clearly after 3 minutes
    tons = r["tons"]["mean"]
    base = np.nanmean(tons[:edge_idx])
    final = np.nanmean(tons[-6:])
    if final > base:
        t30 = tons[edge_idx + 3]
        t180 = tons[edge_idx + 18]
        assert (t30 - base) < 0.5 * (final - base)
        assert (t180 - base) > 0.4 * (final - base)

    # MTW return temperature rises with the load; supply stays near setpoint
    ret = r["mtw_return"]["mean"]
    sup = r["mtw_supply"]["mean"]
    assert np.nanmax(ret[edge_idx:]) > np.nanmean(ret[:edge_idx]) + 0.3
    assert (np.nanmax(sup) - np.nanmin(sup)) < (np.nanmax(ret) - np.nanmin(ret))

    # falling edges de-stage more slowly than rising edges stage
    if "falling" in out:
        f = out["falling"]
        tons_f = f["tons"]["mean"]
        base_f = np.nanmean(tons_f[:edge_idx])
        final_f = np.nanmean(tons_f[-6:])
        if final > base and base_f > final_f:
            prog_up = (tons[edge_idx + 12] - base) / max(final - base, 1e-9)
            prog_dn = (base_f - tons_f[edge_idx + 12]) / max(base_f - final_f, 1e-9)
            anchor(prog_up > prog_dn,
                   "staging is faster than de-staging (2 min after the edge)")

"""Figure 5 — Summit power and energy trends over the year.

Weekly boxplots of cluster power and PUE across the twin year, with the
February maintenance (forced chillers) reproduced.
"""

import numpy as np

from benchutil import anchor, emit, to_mw_equiv
from repro.core.pue import weekly_summary
from repro.core.report import render_series, render_table, sparkline


def run_year(twin_year):
    dt = 120.0
    times, power = twin_year.cluster_power(dt=dt)
    # February cooling-tower maintenance: forced 100% chilled water for a week
    feb = (times >= 35 * 86_400.0) & (times < 42 * 86_400.0)
    st = twin_year.plant.simulate(times, power, chiller_forced=feb.astype(float))
    weekly_power = weekly_summary(times, power, extra_max=power)
    weekly_pue = weekly_summary(times, st.pue)
    return times, power, st, weekly_power, weekly_pue, feb


def test_fig05_year_trend(benchmark, twin_year):
    times, power, st, wk_p, wk_pue, feb = benchmark.pedantic(
        run_year, args=(twin_year,), rounds=1, iterations=1
    )
    mw = to_mw_equiv(power, twin_year)
    summer = twin_year.weather.summer_mask(times)

    lines = [
        "Figure 5: Summit power and energy trends (twin year, full-scale MW equivalent)",
        render_series("cluster power (MW eq.)", mw, "MW"),
        render_series("weekly median power", to_mw_equiv(wk_p["median"], twin_year), "MW"),
        render_series("weekly max power", to_mw_equiv(wk_p["week_max_extra"], twin_year), "MW"),
        render_series("PUE (weekly median)", wk_pue["median"]),
        render_series("chiller tons", st.chiller_tons),
        "",
        f"annual PUE {st.pue.mean():.3f} (paper 1.11) | "
        f"summer PUE {st.pue[summer].mean():.3f} (paper 1.22) | "
        f"Feb maintenance PUE {st.pue[feb].mean():.3f} (paper ~1.3)",
        f"power: mean {mw.mean():.2f} MW | idle floor {mw.min():.2f} MW | "
        f"peak {mw.max():.2f} MW (paper: 5-6 / 2.5 / 13 MW)",
    ]
    emit("fig05_year_trend", "\n".join(lines))

    # power envelope: mean in the 5-6 MW band (full-scale equivalent),
    # idle floor ~2.5 MW, peaks reaching toward 13 MW
    anchor(4.0 < mw.mean() < 7.5, f"mean power in band (got {mw.mean():.2f} MW)")
    # the maintenance drains periodically pull the system toward its idle
    # floor: the minimum approaches 2.5 MW equivalent, repeatedly
    assert mw.min() < 3.4
    below = mw < 0.6 * mw.mean()
    runs = np.flatnonzero(np.diff(below.astype(int)) == 1)
    anchor(len(runs) >= 5,
           f"repeated idle-touching dips across the year (got {len(runs)})")
    anchor(mw.max() > 8.0, f"peaks approach 13 MW (got {mw.max():.2f} MW)")
    # PUE seasonality
    assert 1.08 < st.pue.mean() < 1.17
    assert st.pue[summer].mean() > st.pue[~summer & ~feb].mean() + 0.04
    # the maintenance spike is the largest weekly PUE excursion
    assert st.pue[feb].mean() > 1.22
    # weekly summaries cover the year
    assert wk_p.n_rows >= 52

"""Table 1 — Summit system specification, printed from the model itself."""

import numpy as np

from benchutil import emit
from repro.config import SUMMIT
from repro.core.report import render_table
from repro.machine import NodePowerModel, Topology


def build_table1():
    topo = Topology(SUMMIT)
    model = NodePowerModel(SUMMIT)
    d = topo.describe()
    rows = [
        ["Nodes", f"{d['nodes']:,} IBM AC922 nodes"],
        ["Cabinets", f"{d['cabinets']} watercooled cabinets, {SUMMIT.nodes_per_cabinet} nodes each"],
        ["GPUs / CPUs", f"{d['gpus']:,} V100 / {d['cpus']:,} Power9"],
        ["Peak power", f"{SUMMIT.system_peak_mw:.0f} MW"],
        ["Idle power", f"{SUMMIT.system_idle_mw:.1f} MW"],
        ["Node max power", f"{model.peak_power():.0f} W"],
        ["Node idle power", f"{model.idle_power():.0f} W"],
        ["CPU TDP", f"{SUMMIT.cpu_tdp_w:.0f} W x {SUMMIT.cpus_per_node}"],
        ["GPU TDP", f"{SUMMIT.gpu_tdp_w:.0f} W x {SUMMIT.gpus_per_node}"],
        ["MTW supply", f"{SUMMIT.mtw_supply_f_min:.0f}-{SUMMIT.mtw_supply_f_max:.0f} F"],
        ["MTW return", f"{SUMMIT.mtw_return_f_min:.0f}-{SUMMIT.mtw_return_f_max:.0f} F"],
        ["Cooling towers / chillers", f"{SUMMIT.n_cooling_towers} / {SUMMIT.n_chillers}"],
    ]
    return d, model, rows


def test_table1_system_spec(benchmark):
    d, model, rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    emit("table1_system", render_table(
        ["item", "value"], rows, title="Table 1: Summit system specification"
    ))
    # Table 1 anchors
    assert d["nodes"] == 4626
    assert d["cabinets"] == 257
    assert d["gpus"] == 27_756
    assert model.peak_power() == 2300.0          # node max power (Table 1)
    # system envelope consistency: idle model x nodes ~ 2.5 MW
    assert abs(model.idle_power() * d["nodes"] / 1e6 - SUMMIT.system_idle_mw) < 0.3

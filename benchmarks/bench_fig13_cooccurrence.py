"""Figure 13 — GPU failure co-occurrence: Pearson correlation of per-node
failure-count vectors, Bonferroni-corrected."""

import numpy as np

from benchutil import anchor, emit
from repro.core.reliability import cooccurrence_matrix
from repro.core.report import render_table
from repro.failures.xid import XID_TYPES

_IDX = {t.name: i for i, t in enumerate(XID_TYPES)}


def test_fig13_cooccurrence(benchmark, twin_year):
    out = benchmark.pedantic(
        cooccurrence_matrix,
        args=(twin_year.failures, twin_year.config.n_nodes),
        rounds=1, iterations=1,
    )
    sig = out["significant"]
    rows = []
    for i in range(len(XID_TYPES)):
        for j in range(i + 1, len(XID_TYPES)):
            if np.isfinite(sig[i, j]):
                rows.append([XID_TYPES[i].name, XID_TYPES[j].name,
                             f"{sig[i, j]:.2f}"])
    rows.sort(key=lambda r: -abs(float(r[2])))
    emit("fig13_cooccurrence", render_table(
        ["type A", "type B", "pearson r (significant)"],
        rows[:20],
        title=(
            "Figure 13: GPU failure co-occurrence "
            f"(alpha=0.05 Bonferroni, threshold {out['threshold']:.2e})"
        ),
    ))

    corr = out["corr"]
    i_mc = _IDX["Internal microcontroller warning"]
    i_dr = _IDX["Driver error handling exception"]
    i_db = _IDX["Double-bit error"]
    i_pr = _IDX["Page retirement event"]
    i_pc = _IDX["Preemptive cleanup"]

    cts = twin_year.failures.counts_by_type()
    # the headline pair: micro-controller warnings predict driver errors
    if (cts["Internal microcontroller warning"] >= 10
            and cts["Driver error handling exception"] >= 10):
        anchor(corr[i_mc, i_dr] > 0.6,
               "microcontroller warning <-> driver error strongly correlated")
    # the page-retirement cluster
    if cts["Double-bit error"] >= 20 and cts["Page retirement event"] >= 20:
        anchor(corr[i_db, i_pr] > 0.15, "double-bit <-> page retirement event")
        anchor(corr[i_db, i_pc] > 0.15, "double-bit <-> preemptive cleanup")

    # uncorrelated user-error pairs stay low: memory page faults vs the
    # driver-group defect types
    i_mp = _IDX["Memory page fault"]
    if np.isfinite(corr[i_mp, i_dr]):
        anchor(abs(corr[i_mp, i_dr]) < 0.4,
               "workload errors not tied to driver defect nodes")
    # significance masking removes most weak pairs
    n_sig = np.isfinite(sig).sum() - len(XID_TYPES)  # minus the diagonal
    n_all = np.isfinite(corr).sum() - len(XID_TYPES)
    assert n_sig <= n_all

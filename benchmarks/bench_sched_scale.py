"""Extension X6 — event-driven co-simulation at scale.

The paper's datasets span a year of Summit operation (~840k jobs on 4608
nodes); ROADMAP item 2 asks for a co-simulation core that makes
multi-year, multi-million-job what-if studies interactive.  This bench
drives both rebuilt hot paths against their straight-line seed
implementations:

* **Scheduler**: a burst-quantized 95%-load catalog (submits land in
  17-day waves, so the pending queue holds tens of thousands of jobs at
  any machine size — the regime where the seed's per-event
  ``pending.sort()`` and per-blocked-job ``sorted(running)`` walks go
  superlinear).  Reference and event engines are co-timed and the full
  ``ScheduleResult`` compared bit-for-bit wherever the reference is
  feasible; beyond ``REF_CEILING`` jobs only the event engine runs and
  the baseline keeps its best *measured* jobs/s (its throughput only
  degrades with size, so the printed speedup is a lower bound).
* **Trace synthesis**: a class-5 fleet (many small jobs, the
  per-allocation-interpretation worst case) painted over five simulated
  days; the seed-faithful loop engine (per-window noise redraws, one
  Python iteration per active allocation) against the batched kernel
  path, bit-identity asserted on every array.
* **Partitioned feed**: the largest schedule is streamed into a
  time-sharded ``PartitionedDataset`` and probed back, cross-checked
  against the in-memory interval index — the hand-off that lets the
  `.rcs` pipeline consume multi-year allocation histories.

Timing ratios are asserted via ``anchor`` (full scale only); the
operation-count invariants below are hard asserts at every scale and are
what the CI smoke step gates on.
"""

import tempfile
import time

import numpy as np

from benchutil import SCALE, anchor, emit
from repro.core.report import render_table
from repro.workload import (
    AllocationIntervalIndex,
    ClusterTraceBuilder,
    JobCatalog,
    Scheduler,
    read_active_allocations,
    schedule_to_partitioned,
    synthetic_catalog,
)

#: catalog sizes; the last is the paper-scale multi-year point
POINTS = (20_000, 100_000, 1_000_000)
#: largest point where the seed scheduler is co-timed (its cost grows
#: superlinearly with backlog: measured 46 s at 50k, 292 s at 100k jobs)
REF_CEILING = 150_000
#: machine utilization of the synthetic load — just under critical, so
#: every job eventually starts and the backlog stays scale-invariant
UTILIZATION = 0.95
#: submit-time quantum: all submits within a wave land at its start
BURST_S = 1.5e6


def burst_catalog(n_jobs: int, seed: int) -> tuple[JobCatalog, float]:
    """A 95%-load catalog whose submits arrive in ``BURST_S`` waves.

    The horizon is derived from the demand itself (``node-seconds /
    (capacity * UTILIZATION)``), so the backlog regime — tens of
    thousands of pending jobs at every burst edge — is the same at 20k
    and at 1M jobs, and the schedule always starts every job.
    """
    probe = synthetic_catalog(n_jobs=n_jobs, horizon_s=1.0, seed=seed)
    t = probe.table
    demand = float((t["node_count"] * t["walltime_s"]).sum())
    horizon = demand / (probe.config.n_nodes * UTILIZATION)
    cat = synthetic_catalog(n_jobs=n_jobs, horizon_s=horizon, seed=seed)
    sub = np.floor(cat.table["submit_time"] / BURST_S) * BURST_S
    return JobCatalog(cat.table.with_column("submit_time", sub),
                      cat.config), horizon


def schedules_identical(a, b) -> bool:
    for name in a.allocations.columns:
        if not np.array_equal(a.allocations[name], b.allocations[name]):
            return False
    for name in a.node_allocations.columns:
        if not np.array_equal(a.node_allocations[name],
                              b.node_allocations[name]):
            return False
    if not np.array_equal(a.dropped, b.dropped):
        return False
    for name in a.dropped_by_class.columns:
        if not np.array_equal(a.dropped_by_class[name],
                              b.dropped_by_class[name]):
            return False
    return True


def assert_op_counts(stats: dict, n_jobs: int, result) -> None:
    """Engine-internal bookkeeping invariants — the CI smoke gates
    (hard asserts at every scale; no timing involved)."""
    assert stats["n_events"] == (
        stats["n_submits"] + stats["n_completion_batches"]
    )
    assert stats["n_submits"] == n_jobs
    assert stats["n_started"] == result.allocations.n_rows
    assert stats["n_started"] + len(result.dropped) == n_jobs
    assert stats["max_pending"] > 0
    assert stats["n_queue_scans"] >= 1
    assert stats["n_shadow_walks"] <= stats["n_queue_scans"]
    assert int(result.dropped_by_class["n_dropped"].sum()) == len(
        result.dropped
    )


def run_scheduler_sweep():
    sizes = []
    for base in POINTS:
        n = max(2_000, int(base * SCALE))
        if n not in sizes:
            sizes.append(n)
    rows = []
    ident_all = True
    ref_jobs_per_s = None  # best measured seed throughput so far
    last = {}
    for n in sizes:
        cat, horizon = burst_catalog(n, seed=3)
        ev = Scheduler(cat.config, seed=0, engine="event")
        t0 = time.perf_counter()
        ev_res = ev.run(cat, horizon * 1.1)
        ev_t = time.perf_counter() - t0
        st = ev.last_run_stats
        assert_op_counts(st, n, ev_res)

        if n <= REF_CEILING:
            ref = Scheduler(cat.config, seed=0, engine="reference")
            t0 = time.perf_counter()
            ref_res = ref.run(cat, horizon * 1.1)
            ref_t = time.perf_counter() - t0
            assert_op_counts(ref.last_run_stats, n, ref_res)
            ident = schedules_identical(ref_res, ev_res)
            ident_all = ident_all and ident
            ref_jobs_per_s = st["n_started"] / ref_t
            ref_cell = f"{ref_t:.2f}"
            ident_cell = str(ident)
        else:
            # seed path infeasible here; its jobs/s only falls with n,
            # so carrying the last measured figure flatters the baseline
            ref_cell = "(carried)"
            ident_cell = "(property tests)"
        last = {
            "n": n,
            "horizon_s": horizon,
            "ev_t": ev_t,
            "jobs_per_s": st["n_started"] / ev_t,
            "events_per_s": st["n_events"] / ev_t,
            "ref_jobs_per_s": ref_jobs_per_s,
            "result": ev_res,
        }
        rows.append([
            n, f"{horizon / 86_400.0:.0f}", ref_cell, f"{ev_t:.2f}",
            f"{st['n_started'] / ev_t:,.0f}", f"{st['n_events'] / ev_t:,.0f}",
            st["max_pending"], st["n_scans_skipped"], ident_cell,
        ])
    return rows, last, ident_all


def run_trace_comparison():
    """Class-5 fleet over five days: seed-faithful loop vs batch painter."""
    n = max(1_500, int(40_000 * SCALE))
    cat = synthetic_catalog(
        n_jobs=n, horizon_s=5 * 86_400.0, seed=7,
        class_weights=(0.0, 0.0, 0.0, 0.0, 1.0),
    )
    sched = Scheduler(cat.config, seed=0).run(cat, 6 * 86_400.0)

    # short windows at fine dt: few samples per active allocation, the
    # regime where the seed loop's per-allocation overhead dominates
    window_s, dt, n_windows = 120.0, 5.0, 12
    start = 86_400.0
    windows = [(start + i * window_s, start + (i + 1) * window_s)
               for i in range(n_windows)]

    # noise_cache=False reproduces the seed's per-window noise redraws
    loop_b = ClusterTraceBuilder(cat, sched, seed=0, engine="loop",
                                 noise_cache=False)
    batch_b = ClusterTraceBuilder(cat, sched, seed=0, engine="batch")

    def build_all(builder):
        return [builder.build(w0, w1, dt) for w0, w1 in windows]

    t0 = time.perf_counter()
    loop_out = build_all(loop_b)
    loop_t = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch_out = build_all(batch_b)
    batch_t = time.perf_counter() - t0

    ident = all(
        np.array_equal(a.node_input_w, b.node_input_w)
        and np.array_equal(a.node_cpu_w, b.node_cpu_w)
        and np.array_equal(a.node_gpu_w, b.node_gpu_w)
        for a, b in zip(loop_out, batch_out)
    )

    al = sched.allocations
    b, e = al["begin_time"], al["end_time"]
    k = al["node_count"].astype(np.float64)
    node_s = 0.0
    for w0, w1 in windows:
        ov = np.clip(np.minimum(e, w1) - np.maximum(b, w0), 0.0, None)
        node_s += float((ov * k).sum())
    return {
        "n_jobs": n,
        "loop_t": loop_t,
        "batch_t": batch_t,
        "node_s": node_s,
        "ident": ident,
    }


def run_feed_roundtrip(result, horizon_s):
    """Stream the schedule to a PartitionedDataset; probe it back and
    cross-check against the in-memory interval index."""
    al = result.allocations
    index = AllocationIntervalIndex(al)
    begin, end = al["begin_time"], al["end_time"]
    with tempfile.TemporaryDirectory(prefix="sched-feed-") as root:
        shard_s = max(horizon_s / 16.0, 86_400.0)
        ds = schedule_to_partitioned(result, root, shard_s,
                                     include_nodes=False)
        n_shards = ds.n_partitions
        probes_ok = True
        for frac in (0.15, 0.5, 0.85):
            t0 = frac * horizon_s
            t1 = t0 + 6 * 3_600.0
            got = np.sort(read_active_allocations(ds, t0, t1)
                          ["allocation_id"])
            rows = index.active_rows(t0, t1)
            live = rows[(begin[rows] < t1) & (end[rows] > t0)]
            want = np.sort(al["allocation_id"][live])
            probes_ok = probes_ok and np.array_equal(got, want)
    return n_shards, probes_ok


def test_cosim_scale(benchmark):
    (rows, last, ident_all), trace = benchmark.pedantic(
        lambda: (run_scheduler_sweep(), run_trace_comparison()),
        rounds=1, iterations=1,
    )
    # the largest schedule is the multi-year one — that's the feed demo
    n_alloc = last["result"].allocations.n_rows
    n_shards, probes_ok = run_feed_roundtrip(
        last["result"], last["horizon_s"] * 1.1
    )

    jobs_ratio = last["jobs_per_s"] / last["ref_jobs_per_s"]
    trace_ratio = trace["loop_t"] / trace["batch_t"]
    table = render_table(
        ["jobs", "sim days", "ref (s)", "event (s)", "jobs/s", "events/s",
         "max pending", "scans skipped", "identical"],
        rows,
        title="X6: event-driven co-simulation at scale",
    )
    lines = [
        table,
        "",
        f"largest point: {last['n']:,} jobs over "
        f"{last['horizon_s'] / (365 * 86_400.0):.1f} simulated years",
        "schedule bit-identical at all co-timed points: "
        f"{ident_all}",
        f"jobs/s speedup at largest point: {jobs_ratio:.1f}x (floor 5x)",
        "",
        f"trace fleet: {trace['n_jobs']:,} class-5 jobs, "
        f"{trace['node_s'] / 1e6:.1f}M node-seconds painted "
        f"(loop {trace['loop_t']:.2f} s, batch {trace['batch_t']:.2f} s)",
        f"trace arrays bit-identical: {trace['ident']}",
        f"trace node-seconds/s speedup: {trace_ratio:.1f}x (floor 3x)",
        "",
        f"partitioned feed: {n_alloc:,} allocations -> {n_shards} shards",
        f"partitioned feed probes match interval index: {probes_ok}",
    ]
    emit("sched_scale", "\n".join(lines))

    assert ident_all
    assert trace["ident"]
    assert probes_ok
    anchor(jobs_ratio >= 5.0,
           "event core >=5x seed jobs/s at the million-job point")
    anchor(trace_ratio >= 3.0,
           "batched trace synthesis >=3x seed node-seconds/s")

"""Extension — storage-engine I/O throughput: ``.rcs`` pushdown vs ``.npz``.

A wide archive dataset (one sorted time column, one node column, 36 float
telemetry channels — the shape of the paper's per-node parquet files) is
written once per format, then read back through every access path the
pipeline uses:

* ``full``       — materialize every column of every shard;
* ``projected``  — a 2-column projection (``timestamp`` + one channel),
  the shape of ``telemetry_series``'s pushdown: ``.rcs`` maps only those
  columns' pages, ``.npz`` decompresses only those members;
* ``zone-pruned`` — a one-shard time-range scan: zone maps skip 7 of the
  8 shards before any byte of them is read, then ``searchsorted`` slices
  the survivor.

Each variant reports a **cold** pass (first touch after open) and a
**warm** pass (page cache hot).  Every read is forced to consume its
bytes (column sums), so mmap laziness cannot fake a win; and every
variant's table is asserted **bit-identical** to the full ``.npz``
baseline before any timing is trusted.

The headline anchor is the tentpole's acceptance bar: the 2-column
projected ``.rcs`` read must beat the full-table ``.npz`` read by >= 3x.
"""

import time

import numpy as np

from benchutil import SCALE, anchor, emit
from repro.core.report import render_table
from repro.frame.table import Table, concat
from repro.parallel import PartitionedDataset

N_CHANNELS = 36
N_SHARDS = 8
ROWS_PER_SHARD = max(4_000, int(50_000 * SCALE))
PROJECTION = ["timestamp", "m00"]


def build_dataset(root, fmt):
    """Write the wide archive in ``fmt`` (same bytes for both formats)."""
    ds = PartitionedDataset.create(root / fmt, f"wide-{fmt}")
    rng = np.random.default_rng(42)
    span = float(ROWS_PER_SHARD)
    for i in range(N_SHARDS):
        t0 = i * span
        cols = {
            "timestamp": np.arange(t0, t0 + span),
            "node": np.arange(ROWS_PER_SHARD, dtype=np.int64) % 64,
        }
        for c in range(N_CHANNELS):
            cols[f"m{c:02d}"] = rng.normal(2_000.0, 150.0, ROWS_PER_SHARD)
        ds.append(Table(cols), t0, t0 + span, fmt=fmt)
    return ds


def consume(table: Table) -> float:
    """Touch every byte of every column (defeats mmap laziness)."""
    total = 0.0
    for c in table.columns:
        total += float(np.asarray(table[c], dtype=np.float64).sum())
    return total


def timed(fn):
    """(result, cold seconds, warm seconds) for one read variant."""
    t0 = time.perf_counter()
    out = fn()
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    fn()
    warm = time.perf_counter() - t0
    return out, cold, warm


def _assert_tables_identical(a, b, label):
    assert a.columns == b.columns, label
    assert a.n_rows == b.n_rows, label
    for c in a.columns:
        assert a[c].dtype == b[c].dtype, (label, c)
        assert np.array_equal(a[c], b[c]), (label, c)


def test_io_throughput(tmp_path):
    datasets = {fmt: build_dataset(tmp_path, fmt) for fmt in ("rcs", "npz")}
    n_rows = datasets["rcs"].n_rows
    # the one-shard probe window: zone maps must skip the other 7 shards
    span = float(ROWS_PER_SHARD)
    t0p, t1p = 2 * span, 3 * span

    variants = {}  # (variant, fmt) -> (table, cold_s, warm_s)
    for fmt, ds in datasets.items():
        variants["full", fmt] = timed(
            lambda ds=ds: (lambda t: (consume(t), t)[1])(ds.to_table())
        )
        variants["projected", fmt] = timed(
            lambda ds=ds: (lambda t: (consume(t), t)[1])(
                ds.to_table(columns=PROJECTION)
            )
        )
        variants["zone-pruned", fmt] = timed(
            lambda ds=ds: (lambda t: (consume(t), t)[1])(
                concat(list(ds.scan(PROJECTION, t0p, t1p)))
            )
        )

    # ---- bit-identity across formats and against unpushed reads ----
    full_npz = variants["full", "npz"][0]
    _assert_tables_identical(variants["full", "rcs"][0], full_npz, "full")
    want_proj = full_npz.select(PROJECTION)
    for fmt in ("rcs", "npz"):
        _assert_tables_identical(
            variants["projected", fmt][0], want_proj, f"projected/{fmt}"
        )
    ts = full_npz["timestamp"]
    want_pruned = full_npz.filter((ts >= t0p) & (ts < t1p)).select(PROJECTION)
    for fmt in ("rcs", "npz"):
        _assert_tables_identical(
            variants["zone-pruned", fmt][0], want_pruned, f"pruned/{fmt}"
        )

    kept = datasets["rcs"].select_time(t0p, t1p)
    assert kept == [2], "zone maps failed to prune to the single hot shard"

    rows = []
    for (variant, fmt), (table, cold, warm) in variants.items():
        rows.append([
            variant, fmt, len(table.columns), table.n_rows,
            f"{cold:.4f}", f"{warm:.4f}",
        ])
    main = render_table(
        ["variant", "format", "cols", "rows", "cold s", "warm s"],
        rows,
        title=(
            "IO throughput: full vs projected vs zone-pruned reads "
            f"({N_SHARDS} shards x {N_CHANNELS + 2} columns)"
        ),
    )
    speedup = variants["full", "npz"][1] / max(
        variants["projected", "rcs"][1], 1e-9
    )
    footer = (
        f"\nall reads bit-identical: yes"
        f"\nzone-map pruned shards: {N_SHARDS - len(kept)}/{N_SHARDS}"
        f"\nprojected rcs vs full npz (cold): {speedup:.1f}x"
        f"\nbytes on disk: rcs {datasets['rcs'].n_bytes} "
        f"npz {datasets['npz'].n_bytes} ({n_rows} rows)\n"
    )
    emit("io_throughput", main + footer)

    # tentpole acceptance bar: 2-column projection >= 3x full-table .npz
    anchor(
        speedup >= 3.0,
        f"projected .rcs read must be >= 3x full .npz read, got {speedup:.1f}x",
    )
    # pruning must never be slower than the projected full sweep it replaces
    anchor(
        variants["zone-pruned", "rcs"][1] <= variants["projected", "rcs"][1] * 1.5,
        "zone-pruned scan slower than the full projected sweep",
    )

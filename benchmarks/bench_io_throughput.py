"""Extension — storage-engine I/O: compressed ``.rcs`` vs raw vs ``.npz``.

A wide archive dataset (one sorted time column, one node column, 36 float
telemetry channels — the shape of the paper's per-node parquet files) is
written once per store configuration:

* ``rcs``     — compressed columnar: per-column codecs picked by the
  encoder (delta/varint for integers, quantized-delta for sensor floats,
  XOR-shuffle for noisy floats), recorded in the shard footer;
* ``rcs-raw`` — the PR 4 layout (``REPRO_RCS_COMPRESSION=off``): raw
  little-endian pages, zero-copy mmap reads;
* ``npz``     — ``numpy.savez_compressed`` standing in for parquet.

The generator emits *quantized smooth* channels — bounded-slew integer
random walks times a 0.1 LSB, the shape of real power/thermal sensor
feeds — plus a noisy minority (spectral residuals), so the codec selector
faces both its best case and its worst.

Reads go through every access path the pipeline uses: ``full`` (all
columns, every shard), ``projected`` (2-column pushdown), and
``zone-pruned`` (one-shard time-range scan).  Each reports a **cold**
pass — page cache evicted first (``drop_caches`` as root, else
``posix_fadvise(DONTNEED)``), the state a year-scale archive is always
in — and a **warm** pass (pages resident).
Every read is forced to consume its bytes (column sums), so mmap
laziness cannot fake a win; and every variant's table is asserted
**bit-identical** across all three stores before any timing is trusted.

Anchored acceptance bars (hard at full scale, advisory below):

* compressed ``.rcs`` bytes on disk  <  ``.npz`` bytes on disk;
* compressed full cold read  <=  2x the raw ``.rcs`` full cold read;
* 2-column projected ``.rcs`` read  >=  3x the full-table ``.npz`` read;
* zone pruning never loses to the projected full sweep it replaces.
"""

import os
from unittest.mock import patch

import time

import numpy as np

from benchutil import SCALE, anchor, emit
from repro.core.report import render_table
from repro.frame.table import Table, concat
from repro.parallel import PartitionedDataset

N_CHANNELS = 36
N_NOISY = 6  # trailing channels carry full-entropy residuals
N_SHARDS = 8
ROWS_PER_SHARD = max(4_000, int(50_000 * SCALE))
PROJECTION = ["timestamp", "m00"]
LSB = 0.1  # sensor quantum: power/thermal feeds report in 0.1 W / 0.1 C
COLD_READ_BUDGET = 2.0  # compressed full cold read vs raw, max ratio

# (store key) -> (shard format, REPRO_RCS_COMPRESSION while writing)
STORES = {
    "rcs": ("rcs", "auto"),
    "rcs-raw": ("rcs", "off"),
    "npz": ("npz", "auto"),
}


def _smooth_channel(rng, n, slew=40):
    """Quantized bounded-slew walk: ``ints * LSB`` around 2 kW."""
    steps = rng.integers(-slew, slew + 1, n)
    return (20_000 + np.cumsum(steps)) * LSB


def build_datasets(root):
    """Write the same shard tables into all three store configurations."""
    stores = {
        key: PartitionedDataset.create(root / key, f"wide-{key}")
        for key in STORES
    }
    rng = np.random.default_rng(42)
    span = float(ROWS_PER_SHARD)
    for i in range(N_SHARDS):
        t0 = i * span
        cols = {
            "timestamp": np.arange(t0, t0 + span),
            "node": np.arange(ROWS_PER_SHARD, dtype=np.int64) % 64,
        }
        for c in range(N_CHANNELS):
            if c >= N_CHANNELS - N_NOISY:
                cols[f"m{c:02d}"] = rng.normal(2_000.0, 150.0,
                                               ROWS_PER_SHARD)
            else:
                cols[f"m{c:02d}"] = _smooth_channel(rng, ROWS_PER_SHARD)
        table = Table(cols)
        for key, (fmt, mode) in STORES.items():
            with patch.dict(os.environ, {"REPRO_RCS_COMPRESSION": mode}):
                stores[key].append(table, t0, t0 + span, fmt=fmt)
    return stores


def evict(ds) -> None:
    """Drop the page cache for the store's shard files (best effort).

    Without this the just-written shards sit fully cached and the "cold"
    pass reads raw pages at RAM speed — a state a year-scale archive
    never enjoys.  As root, ``/proc/sys/vm/drop_caches`` evicts
    deterministically; otherwise fall back to per-file
    ``posix_fadvise(DONTNEED)``, which is advisory — on filesystems that
    ignore it the cold/warm split simply collapses.
    """
    os.sync()  # dirty pages cannot be dropped
    try:
        with open("/proc/sys/vm/drop_caches", "w") as f:
            f.write("1\n")
        return
    except OSError:
        pass
    if not hasattr(os, "posix_fadvise"):  # pragma: no cover - POSIX only
        return
    for p in ds.partitions:
        fd = os.open(ds.root / p.filename, os.O_RDONLY)
        try:
            os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
        finally:
            os.close(fd)


def consume(table: Table) -> float:
    """Touch every byte of every column (defeats mmap laziness)."""
    total = 0.0
    for c in table.columns:
        total += float(np.asarray(table[c], dtype=np.float64).sum())
    return total


def timed(fn, pre=None, passes=3):
    """(result, cold seconds, warm seconds) for one read variant.

    Cold is the best of ``passes`` runs, each preceded by ``pre`` (page-
    cache eviction); warm is the best of two back-to-back runs.  Every
    pass starts with the previous pass's tables released — holding a
    100 MB result while the next pass allocates its own doubles the
    allocator's page-fault bill and skews the measurement.
    """
    out, cold, warm = None, float("inf"), float("inf")
    for _ in range(passes):
        if pre is not None:
            pre()
        out = None
        t0 = time.perf_counter()
        out = fn()
        cold = min(cold, time.perf_counter() - t0)
    for _ in range(2):
        out = None
        t0 = time.perf_counter()
        out = fn()
        warm = min(warm, time.perf_counter() - t0)
    return out, cold, warm


def _assert_tables_identical(a, b, label):
    assert a.columns == b.columns, label
    assert a.n_rows == b.n_rows, label
    for c in a.columns:
        assert a[c].dtype == b[c].dtype, (label, c)
        assert np.array_equal(a[c], b[c]), (label, c)


def test_io_throughput(tmp_path):
    datasets = build_datasets(tmp_path)
    n_rows = datasets["rcs"].n_rows
    # the one-shard probe window: zone maps must skip the other 7 shards
    span = float(ROWS_PER_SHARD)
    t0p, t1p = 2 * span, 3 * span

    # timing hygiene: let writeback drain first — flushing ~150 MB of
    # just-written shards must not be billed to whichever store reads
    # first.  Each store then gets one untimed priming pass (allocator +
    # import warm-up) before its timed variants.
    os.sync()

    variants = {}  # (variant, store) -> (table, cold_s, warm_s)
    for key, ds in datasets.items():
        consume(ds.to_table())
        chill = lambda ds=ds: evict(ds)
        variants["full", key] = timed(
            lambda ds=ds: (lambda t: (consume(t), t)[1])(ds.to_table()),
            pre=chill,
        )
        variants["projected", key] = timed(
            lambda ds=ds: (lambda t: (consume(t), t)[1])(
                ds.to_table(columns=PROJECTION)
            ),
            pre=chill,
        )
        variants["zone-pruned", key] = timed(
            lambda ds=ds: (lambda t: (consume(t), t)[1])(
                concat(list(ds.scan(PROJECTION, t0p, t1p)))
            ),
            pre=chill,
        )

    # ---- bit-identity across stores and against unpushed reads ----
    full_npz = variants["full", "npz"][0]
    for key in ("rcs", "rcs-raw"):
        _assert_tables_identical(variants["full", key][0], full_npz,
                                 f"full/{key}")
    want_proj = full_npz.select(PROJECTION)
    ts = full_npz["timestamp"]
    want_pruned = full_npz.filter((ts >= t0p) & (ts < t1p)).select(PROJECTION)
    for key in STORES:
        _assert_tables_identical(
            variants["projected", key][0], want_proj, f"projected/{key}"
        )
        _assert_tables_identical(
            variants["zone-pruned", key][0], want_pruned, f"pruned/{key}"
        )

    kept = datasets["rcs"].select_time(t0p, t1p)
    assert kept == [2], "zone maps failed to prune to the single hot shard"
    # the compressed store is self-describing: footers name the codecs
    enc = datasets["rcs"].encoding_summary()
    assert sum(n for c, n in enc.items() if c != "raw") > 0
    assert all(p.enc is None for p in datasets["rcs-raw"].partitions)

    rows = []
    for (variant, key), (table, cold, warm) in variants.items():
        rows.append([
            variant, key, len(table.columns), table.n_rows,
            f"{cold:.4f}", f"{warm:.4f}",
        ])
    main = render_table(
        ["variant", "store", "cols", "rows", "cold s", "warm s"],
        rows,
        title=(
            "IO throughput: full vs projected vs zone-pruned reads "
            f"({N_SHARDS} shards x {N_CHANNELS + 2} columns)"
        ),
    )
    b_rcs = datasets["rcs"].n_bytes
    b_raw = datasets["rcs-raw"].n_bytes
    b_npz = datasets["npz"].n_bytes
    bytes_ratio = b_rcs / b_npz
    cold_ratio = variants["full", "rcs"][1] / max(
        variants["full", "rcs-raw"][1], 1e-9
    )
    speedup = variants["full", "npz"][1] / max(
        variants["projected", "rcs"][1], 1e-9
    )
    codec_census = " ".join(
        f"{c}={n}" for c, n in sorted(enc.items())
    )
    footer = (
        f"\nall reads bit-identical: yes"
        f"\nzone-map pruned shards: {N_SHARDS - len(kept)}/{N_SHARDS}"
        f"\nbytes on disk: rcs {b_rcs} rcs-raw {b_raw} npz {b_npz}"
        f" ({n_rows} rows)"
        f"\ncompressed/npz bytes: {bytes_ratio:.2f} (must be < 1)"
        f"\ncompressed/raw cold read: {cold_ratio:.2f}x"
        f" (budget {COLD_READ_BUDGET:.1f}x)"
        f"\nprojected rcs vs full npz (cold): {speedup:.1f}x"
        f"\ncolumn codecs: {codec_census}\n"
    )
    emit("io_throughput", main + footer)

    # tentpole acceptance bars (see module docstring)
    anchor(
        b_rcs < b_npz,
        f"compressed .rcs must beat .npz bytes on disk "
        f"({b_rcs} vs {b_npz})",
    )
    anchor(
        cold_ratio <= COLD_READ_BUDGET,
        f"compressed full cold read {cold_ratio:.2f}x raw exceeds "
        f"{COLD_READ_BUDGET:.1f}x budget",
    )
    anchor(
        speedup >= 3.0,
        f"projected .rcs read must be >= 3x full .npz read, got {speedup:.1f}x",
    )
    # pruning must never be slower than the projected full sweep it replaces
    anchor(
        variants["zone-pruned", "rcs"][1]
        <= variants["projected", "rcs"][1] * 1.5,
        "zone-pruned scan slower than the full projected sweep",
    )

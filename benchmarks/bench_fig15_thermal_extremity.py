"""Figure 15 — frequency of GPU failures vs their thermal extremity
(z-score of the offending GPU's temperature within its job)."""

import numpy as np

from benchutil import anchor, emit
from repro.core.reliability import thermal_extremity
from repro.core.report import render_table


def test_fig15_thermal_extremity(benchmark, twin_year):
    out = benchmark.pedantic(
        thermal_extremity,
        args=(twin_year.failures, twin_year.job_thermal),
        rounds=1, iterations=1,
    )
    t = out["table"]
    rows = [
        [str(t["xid_name"][i]), int(t["n"][i]),
         f"{t['z_skewness'][i]:.2f}" if np.isfinite(t["z_skewness"][i]) else "-",
         f"{t['max_temp_c'][i]:.1f}" if np.isfinite(t["max_temp_c"][i]) else "-",
         f"{t['frac_ge_60c'][i]:.1%}" if np.isfinite(t["frac_ge_60c"][i]) else "-"]
        for i in range(t.n_rows)
    ]
    emit("fig15_thermal_extremity", render_table(
        ["GPU error", "n (with temp+job)", "z skewness", "max temp (C)",
         "frac >= 60C"],
        rows,
        title="Figure 15: thermal extremity of GPU failures",
    ))

    def row(name):
        sel = t.filter(t["xid_name"] == name)
        return {k: sel[k][0] for k in t.columns}

    # almost no left skew anywhere (paper: "Almost no distributions exhibit
    # left skewness"); graphics engine fault is the only candidate.  The
    # sample skewness has standard error ~sqrt(6/n), so the rejection
    # threshold widens for sparsely-populated types.
    for i in range(t.n_rows):
        name = str(t["xid_name"][i])
        n = int(t["n"][i])
        if n >= 30 and name != "Graphics engine fault":
            floor = -0.15 - 2.0 * np.sqrt(6.0 / n)
            anchor(t["z_skewness"][i] > floor,
                   f"{name} not left-skewed (got {t['z_skewness'][i]:.2f}, "
                   f"floor {floor:.2f} at n={n})")

    # double-bit and off-the-bus right-skewed ("did not yet warm up")
    for name in ("Double-bit error", "Fallen off the bus",
                 "Internal microcontroller warning",
                 "Page retirement failure"):
        r = row(name)
        if r["n"] >= 20:
            anchor(r["z_skewness"] > 0.2, f"{name} right-skewed")

    # absolute temperatures: double-bit errors cap at 46.1 C; very few
    # failures at or above 60 C
    r = row("Double-bit error")
    if r["n"] > 0:
        assert r["max_temp_c"] <= 46.1 + 1e-6
    big = t.filter(t["n"] >= 50)
    for i in range(big.n_rows):
        anchor(big["frac_ge_60c"][i] < 0.10,
               f"{big['xid_name'][i]}: few failures at >= 60 C")

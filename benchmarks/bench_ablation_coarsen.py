"""Ablation X1 — the Section 3 coarsening choice.

Sweeps the coarsening window (1 s / 10 s / 60 s) and quantifies the
trade-off the paper's 10-second choice sits on: storage footprint vs
envelope fidelity (how much of the true min/max swing the windowed stats
retain) vs sampling-noise suppression.
"""

import numpy as np

from benchutil import emit
from repro.core.coarsen import coarsen_telemetry
from repro.core.report import render_table
from repro.frame.io import save_npz


def run_ablation(twin_day, tmp_dir):
    arr = twin_day.builder.build(8 * 3600.0, 10 * 3600.0, 1.0)
    tel = twin_day.sampler().sample(arr)
    truth = arr.node_input_w

    results = {}
    for width in (1.0, 10.0, 60.0):
        coarse = coarsen_telemetry(tel, ["input_power"], width=width)
        n_bytes = save_npz(coarse, tmp_dir / f"w{int(width)}.npz")

        # noise suppression: error of the windowed mean vs true window mean.
        # Collector delay spills samples across window edges, so compare
        # only full windows, matched by (node, window index).
        k = int(width)
        t_mean = truth.reshape(truth.shape[0], -1, k).mean(axis=2)
        full = coarse.filter(coarse["count"] == k)
        wi = ((full["timestamp"] - 8 * 3600.0) / width).astype(np.int64)
        inside = (wi >= 0) & (wi < t_mean.shape[1])
        full = full.filter(inside)
        wi = wi[inside]
        true_vals = t_mean[full["node"], wi]
        err = np.abs(full["input_power_mean"] - true_vals) / true_vals

        # envelope retention: max over the whole period from window maxima
        env_true = truth.max(axis=1)
        env_kept = np.zeros(truth.shape[0])
        np.maximum.at(env_kept, coarse["node"], coarse["input_power_max"])

        results[width] = {
            "rows": coarse.n_rows,
            "bytes": n_bytes,
            "mean_rel_err": float(np.median(err)),
            "envelope_ratio": float(np.median(env_kept / env_true)),
        }
    return results


def test_ablation_coarsening_window(benchmark, twin_day, tmp_path):
    results = benchmark.pedantic(
        run_ablation, args=(twin_day, tmp_path), rounds=1, iterations=1
    )
    rows = [
        [f"{int(w)} s", d["rows"], d["bytes"],
         f"{d['mean_rel_err']:.2%}", f"{d['envelope_ratio']:.3f}"]
        for w, d in sorted(results.items())
    ]
    emit("ablation_coarsen", render_table(
        ["window", "rows", "bytes (npz)", "median mean-err", "envelope kept"],
        rows,
        title="Ablation X1: coarsening window (Section 3's 10 s choice)",
    ))

    r1, r10, r60 = results[1.0], results[10.0], results[60.0]
    # storage shrinks with the window
    assert r1["bytes"] > r10["bytes"] > r60["bytes"]
    # windowed means suppress the 1 Hz sampling noise
    assert r10["mean_rel_err"] < r1["mean_rel_err"]
    # min/max columns preserve the envelope at every width (the reason the
    # paper stores them): >97% of the true maximum survives
    for d in results.values():
        assert d["envelope_ratio"] > 0.97
    # the 10 s choice wins ~an order of magnitude of storage at
    # sub-percent mean error (collector-delay spill makes the row ratio
    # slightly under 10x)
    assert r10["rows"] * 5 <= r1["rows"]
    assert r10["bytes"] * 3 <= r1["bytes"]
    assert r10["mean_rel_err"] < 0.02

"""Figure 9 — joint distribution of per-node CPU vs GPU power across jobs,
for mean and maximum values, leadership vs small classes."""

import numpy as np

from benchutil import emit
from repro.core import job_component_summary
from repro.core.density import kde_2d
from repro.core.report import render_table
from repro.frame.join import join


def run_component_kdes(twin_jobs, job_series_components):
    summ = job_component_summary(job_series_components)
    cat = twin_jobs.catalog.table.select(["allocation_id", "sched_class"])
    t = join(summ, cat, "allocation_id", how="inner")
    groups = {
        "leadership": t.filter(t["sched_class"] <= 2),
        "small": t.filter(t["sched_class"] >= 3),
    }
    out = {}
    for name, sub in groups.items():
        out[name] = {
            "n": sub.n_rows,
            "mean_cpu": sub["mean_mean_cpu_pwr"],
            "mean_gpu": sub["mean_mean_gpu_pwr"],
            "max_cpu": sub["max_cpu_pwr"],
            "max_gpu": sub["max_gpu_pwr"],
            "kde_mean": kde_2d(sub["mean_mean_cpu_pwr"], sub["mean_mean_gpu_pwr"], n_grid=40),
            "kde_max": kde_2d(sub["max_cpu_pwr"], sub["max_gpu_pwr"], n_grid=40),
        }
    return out


def test_fig09_cpu_gpu_power(benchmark, twin_jobs, job_series_components_jobs):
    out = benchmark.pedantic(
        run_component_kdes, args=(twin_jobs, job_series_components_jobs),
        rounds=1, iterations=1,
    )
    cfg = twin_jobs.config
    rows = []
    for name, d in out.items():
        rows.append([
            name, d["n"],
            f"{np.median(d['mean_cpu']):.0f}", f"{np.median(d['mean_gpu']):.0f}",
            f"{np.median(d['max_cpu']):.0f}", f"{np.median(d['max_gpu']):.0f}",
        ])
    emit("fig09_cpu_gpu", render_table(
        ["class group", "jobs", "med mean CPU (W/node)", "med mean GPU (W/node)",
         "med max CPU (W/node)", "med max GPU (W/node)"],
        rows,
        title="Figure 9: per-node CPU vs GPU power across jobs",
    ))

    for name, d in out.items():
        cpu, gpu = d["mean_cpu"], d["mean_gpu"]
        # density hugs the axes: jobs are either GPU-focused (low CPU) or
        # CPU-focused (low GPU).  Quantify via the fraction of jobs near
        # an axis vs jobs high in both.
        cpu_hi = cpu > 0.55 * cfg.cpus_per_node * cfg.cpu_tdp_w
        gpu_hi = gpu > 0.55 * cfg.gpus_per_node * cfg.gpu_tdp_w
        both_hi = (cpu_hi & gpu_hi).mean()
        one_sided = (cpu_hi ^ gpu_hi).mean()
        assert both_hi < 0.05, name     # sparse upper-right corner
        assert one_sided > 0.10, name   # mass along the axes

    # max plots spread farther up the GPU axis than mean plots
    assert np.quantile(out["small"]["max_gpu"], 0.9) > np.quantile(
        out["small"]["mean_gpu"], 0.9
    )
    # GPUs define the peak: the GPU axis reaches much higher than CPU's
    assert out["leadership"]["max_gpu"].max() > 2.0 * out["leadership"]["max_cpu"].max()

"""Ablation X4 — cooling de-staging speed (Section 9's operational lever).

The paper: "the higher PUE experienced on the high-magnitude falling edges
revealed potential parameter tunings ... to the control system that stages
and de-stages cooling capacity."  This ablation sweeps the plant's
de-staging time constant and measures the energy the facility wastes
cooling load that is no longer there after large falling edges.
"""

import numpy as np

from benchutil import emit
from repro.config import SUMMIT
from repro.cooling import CentralEnergyPlant, Weather
from repro.core.report import render_table


def synthetic_swinging_load(dt: float = 10.0, hours: float = 6.0):
    """A load with repeated large rising/falling edges (worst case for
    de-staging): 8 MW plateaus dropping to 4 MW every 30 minutes."""
    t = np.arange(0.0, hours * 3600.0, dt)
    phase = (t // 1800.0) % 2
    power = np.where(phase == 0, 8e6, 4e6)
    return t, power


def run_ablation():
    weather = Weather(0)
    t, power = synthetic_swinging_load()
    # run in summer so chillers participate (the expensive case)
    t_summer = t + 205 * 86_400.0

    results = {}
    for tau_down in (180.0, 120.0, 60.0, 45.0):
        plant = CentralEnergyPlant(SUMMIT, weather)
        plant.TAU_DOWN_S = tau_down
        st = plant.simulate(t_summer, power)
        overhead_kwh = float(st.overhead_w.sum() * (t[1] - t[0]) / 3.6e6)
        # overcooling: capacity above the instantaneous load
        over = np.maximum((st.tower_tons + st.chiller_tons) * 3517.0 - power, 0.0)
        over_kwh = float(over.sum() * (t[1] - t[0]) / 3.6e6)
        results[tau_down] = {
            "pue": float(st.pue.mean()),
            "overhead_kwh": overhead_kwh,
            "overcool_kwh": over_kwh,
        }
    return results


def test_ablation_destaging(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [f"{tau:.0f} s", f"{d['pue']:.4f}", f"{d['overhead_kwh']:.0f}",
         f"{d['overcool_kwh']:.0f}"]
        for tau, d in sorted(results.items(), reverse=True)
    ]
    emit("ablation_destaging", render_table(
        ["de-staging tau", "mean PUE", "facility overhead (kWh)",
         "overcooled heat (kWh)"],
        rows,
        title=(
            "Ablation X4: de-staging time constant under a 4<->8 MW "
            "swinging load (summer)"
        ),
    ))

    taus = sorted(results)
    # faster de-staging strictly reduces overcooling
    over = [results[tau]["overcool_kwh"] for tau in taus]
    assert all(a <= b + 1e-6 for a, b in zip(over, over[1:]))
    # and buys real facility energy on a swinging load
    slow = results[max(taus)]
    fast = results[min(taus)]
    assert fast["overhead_kwh"] < slow["overhead_kwh"]
    assert fast["pue"] <= slow["pue"] + 1e-9

"""Extension X4 — streaming engine: throughput and lag vs the batch path.

Replays 30 minutes of 1 Hz telemetry through the full ``repro.stream``
graph (coarsen -> cluster aggregate -> {edges, PUE}) and compares against
the one-shot batch computation of the same analyses:

* skew-free replay must reproduce the batch cluster series bit for bit
  with zero late rows — the subsystem's defining invariant, asserted here
  and spec'd in the golden;
* skewed replay (the modeled ~4.1 s mean fan-in delay) reports end-to-end
  finalization lag and must still lose nothing under the default 8 s
  lateness bound.
"""

import time

import numpy as np

from benchutil import emit
from repro.core.aggregate import cluster_power_series
from repro.core.coarsen import coarsen_telemetry
from repro.core.report import render_table
from repro.stream import (
    StreamGraph,
    StreamingClusterAggregate,
    StreamingCoarsen,
    StreamingEdgeDetector,
    StreamingPUE,
    TelemetryReplaySource,
)

SPAN_S = 1800.0
LATENESS_S = 8.0


def _build_graph(telemetry, threshold_w, skew):
    source = TelemetryReplaySource(telemetry, skew=skew, seed=42)
    graph = StreamGraph(source)
    graph.add(
        StreamingCoarsen(["input_power"],
                         lateness_s=LATENESS_S if skew else 0.0),
        collect=False,
    )
    graph.add(StreamingClusterAggregate(), after="coarsen", collect=True)
    graph.add(StreamingEdgeDetector(threshold_w), after="aggregate")
    graph.add(StreamingPUE(it="sum_inp"), after="aggregate", collect=False)
    return graph


def test_stream_throughput(benchmark, twin_day):
    arrays = twin_day.builder.build(6 * 3600.0, 6 * 3600.0 + SPAN_S, 1.0)
    telemetry = twin_day.sampler().sample(arrays)

    t0 = time.perf_counter()
    coarse = coarsen_telemetry(telemetry.sort("timestamp"), ["input_power"])
    batch_series = cluster_power_series(coarse)
    t_batch = time.perf_counter() - t0
    steps = np.abs(np.diff(batch_series["sum_inp"]))
    threshold = float(np.quantile(steps[steps > 0], 0.8))

    # skew-free streaming run: the timed, bit-identical one
    def run_stream():
        graph = _build_graph(telemetry, threshold, skew=False)
        graph.run()
        return graph

    graph = benchmark.pedantic(run_stream, rounds=1, iterations=1)
    t_stream = benchmark.stats["mean"]
    streamed = graph.result("aggregate")
    identical = streamed == batch_series
    late_free = graph.stats.total_late_rows

    # skewed replay: what the live fan-in path would deliver
    t0 = time.perf_counter()
    skewed = _build_graph(telemetry, threshold, skew=True)
    skewed.run()
    t_skew = time.perf_counter() - t0
    late_skew = skewed.stats.total_late_rows
    agg = skewed.stats.node("aggregate")

    n = telemetry.n_rows
    table = render_table(
        ["variant", "rows", "batches", "rows/s", "seconds"],
        [
            ["batch (one shot)", n, "-", f"{n / t_batch:,.0f}",
             f"{t_batch:.3f}"],
            ["stream skew-free", n, graph.source.batches_emitted,
             f"{n / t_stream:,.0f}", f"{t_stream:.3f}"],
            ["stream skewed", n, skewed.source.batches_emitted,
             f"{n / t_skew:,.0f}", f"{t_skew:.3f}"],
        ],
        title="X4: streaming engine vs batch on 30 min of 1 Hz telemetry",
    )
    lines = [
        f"replayed rows: {n}",
        f"streaming == batch: {identical}",
        f"late rows skew-free: {late_free}",
        f"late rows skewed: {late_skew} (lateness {LATENESS_S:.0f} s, "
        f"mean finalization lag {agg.mean_lag_s:.2f} s)",
    ]
    emit("stream_throughput", table + "\n" + "\n".join(lines))

    assert identical, "skew-free streaming drifted from the batch series"
    assert late_free == 0
    assert late_skew == 0, "8 s lateness must cover the ~6.5 s max path skew"

"""Figure 11 — superimposed snapshots of summer rising edges per 1 MW
amplitude class, with the PUE response."""

import numpy as np

from benchutil import anchor, emit, full_scale_ratio, to_mw_equiv
from repro.core.edges import amplitude_class_mw, detect_edges, extract_snapshot, superimpose
from repro.core.report import render_series, render_table


def run_snapshots(twin_summer):
    dt = 10.0
    times, power = twin_summer.cluster_power(dt=dt)
    st = twin_summer.plant.simulate(times + twin_summer.spec.start_time, power)

    # edge threshold: the paper's 868 W/node over the whole machine
    thr = twin_summer.config.edge_threshold_w_per_node * twin_summer.config.n_nodes
    # detect at any amplitude >= ~0.25 MW-equivalent so the 1 MW bin fills
    ratio = full_scale_ratio(twin_summer)
    edges = detect_edges(times, power, threshold_w=0.25e6 / ratio)
    rising = edges.filter(edges["direction"] == 1)

    amp_mw = amplitude_class_mw(rising["amplitude_w"] * ratio)
    before, after = 60.0, 240.0
    by_class: dict[int, dict] = {}
    for mw in range(1, 8):
        sel = amp_mw == mw
        if not sel.any():
            continue
        snaps_p, snaps_pue = [], []
        for t_edge in rising["time"][sel]:
            snaps_p.append(extract_snapshot(times, power, t_edge, before, after))
            snaps_pue.append(extract_snapshot(times, st.pue, t_edge, before, after))
        by_class[mw] = {
            "count": int(sel.sum()),
            "power": superimpose(np.array(snaps_p)),
            "pue": superimpose(np.array(snaps_pue)),
        }
    return by_class, thr


def test_fig11_edge_snapshots(benchmark, twin_summer):
    by_class, thr = benchmark.pedantic(
        run_snapshots, args=(twin_summer,), rounds=1, iterations=1
    )
    lines = ["Figure 11: summer rising-edge snapshots per 1 MW amplitude class",
             "(full-scale MW equivalent; aligned at the edge, -1 min .. +4 min)",
             ""]
    header = "  ".join(f"{mw}MW - {d['count']}" for mw, d in sorted(by_class.items()))
    lines.append("amplitude class - snapshot count: " + header)
    for mw, d in sorted(by_class.items()):
        lines.append(render_series(
            f"{mw}MW power (mean of {d['count']})",
            to_mw_equiv(d["power"]["mean"], twin_summer), "MW"))
        lines.append(render_series(f"{mw}MW PUE", d["pue"]["mean"]))
    emit("fig11_edge_snapshots", "\n".join(lines))

    anchor(len(by_class) >= 3, "several MW amplitude classes observed")
    # small edges are far more frequent than huge ones (paper: 96 x 1MW vs
    # 4 x 7MW during the summer window)
    if 1 in by_class:
        biggest = max(by_class)
        anchor(by_class[1]["count"] > by_class[biggest]["count"],
               "1 MW edges outnumber the largest class")

    # the transition is violent: within the first minute after the edge the
    # mean snapshot climbs by most of its class amplitude
    for mw, d in sorted(by_class.items()):
        m = d["power"]["mean"]
        pre = np.nanmean(m[:5])
        post = np.nanmax(m[6: 6 + 12])  # within ~2 min after the edge
        rise_mw = to_mw_equiv(post - pre, twin_summer)
        anchor(rise_mw > 0.5 * mw, f"{mw}MW class rises by most of its bin")

    # PUE responds inversely to power around the edge
    for mw, d in sorted(by_class.items()):
        if d["count"] < 3:
            continue
        p = d["power"]["mean"]
        q = d["pue"]["mean"]
        okm = np.isfinite(p) & np.isfinite(q)
        if okm.sum() > 10 and np.std(p[okm]) > 0:
            corr = np.corrcoef(p[okm], q[okm])[0, 1]
            anchor(corr < -0.2, f"PUE inversely tracks power ({mw}MW class)")

"""Quickstart: simulate a small Summit twin and look at its power story.

Builds a 90-node deployment running one simulated day of jobs, then prints
the cluster power envelope, the job population, and per-class power
statistics — the Section 4.1 view of the machine in about a minute.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import SUMMIT
from repro.core import job_power_summary
from repro.core.report import fmt_si, render_cdf_quantiles, render_series, render_table
from repro.datasets import SimulationSpec, simulate_twin
from repro.frame.join import join


def main() -> None:
    spec = SimulationSpec(
        n_nodes=90,          # 1/51st of Summit; per-node physics unchanged
        n_jobs=1200,
        horizon_s=86_400.0,  # one day
        seed=7,
    )
    twin = simulate_twin(spec)
    print(f"machine: {twin.config.n_nodes} nodes "
          f"({twin.config.n_nodes * twin.config.gpus_per_node} GPUs), "
          f"{twin.schedule.allocations.n_rows} jobs started, "
          f"{len(twin.schedule.dropped)} still queued at horizon")

    # --- cluster power over the day (Figure 5's raw material) ---
    times, power = twin.cluster_power(dt=60.0)
    print()
    print(render_series("cluster power", power, "W"))
    idle = twin.config.n_nodes * twin.config.node_idle_w
    print(f"idle floor {fmt_si(idle, 'W')}, "
          f"mean {fmt_si(power.mean(), 'W')}, "
          f"peak {fmt_si(power.max(), 'W')}")

    # --- job-level power summaries (Dataset 5) ---
    series = twin.job_series()
    summary = job_power_summary(series)
    cat = twin.catalog.table.select(["allocation_id", "sched_class", "node_count"])
    meta = join(summary, cat, "allocation_id", how="inner")

    print()
    rows = []
    for cls in (1, 2, 3, 4, 5):
        sub = meta.filter(meta["sched_class"] == cls)
        if sub.n_rows == 0:
            continue
        rows.append([
            cls, sub.n_rows,
            int(np.median(sub["node_count"])),
            fmt_si(float(np.median(sub["mean_sum_inp"])), "W"),
            fmt_si(float(sub["max_sum_inp"].max()), "W"),
        ])
    print(render_table(
        ["class", "jobs", "median nodes", "median mean power", "largest max power"],
        rows,
        title="per-class job power (the Figure 6/7 quantities)",
    ))

    print()
    print(render_cdf_quantiles(
        "job mean power / node (W)",
        meta["mean_sum_inp"] / np.maximum(meta["node_count"], 1), "W",
    ))
    print("\nNext: examples/edge_analysis.py (power dynamics), "
          "examples/facility_cooling.py (PUE), "
          "examples/reliability_report.py (GPU failures), "
          "examples/telemetry_pipeline.py (the full data path).")


if __name__ == "__main__":
    main()

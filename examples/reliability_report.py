"""GPU reliability report: the Section 6 analyses on a twin period.

Generates the XID failure log for a simulated quarter, then reproduces the
Table 4 composition, the Figure 13 co-occurrence pairs, the Figure 15
thermal-extremity summary, and the Figure 16 slot histogram.

Run:  python examples/reliability_report.py
"""

import numpy as np

from repro.core.reliability import (
    cooccurrence_matrix,
    failure_composition,
    failures_per_project,
    slot_counts,
    thermal_extremity,
)
from repro.core.report import render_hist, render_table
from repro.datasets import SimulationSpec, simulate_twin
from repro.failures.xid import XID_TYPES


def main() -> None:
    twin = simulate_twin(SimulationSpec(
        n_nodes=90, n_jobs=30_000, horizon_s=91 * 86_400.0, seed=33,
        failure_intensity=12.0,   # boost rates so a quarter has statistics
    ))
    log = twin.failures
    print(f"{log.n_failures} XID events over a simulated quarter "
          f"({twin.schedule.allocations.n_rows} jobs)\n")

    # --- Table 4 ---
    comp = failure_composition(log)
    rows = [
        [str(comp["xid_name"][i]), int(comp["count"][i]),
         f"{comp['max_node_share'][i]:.0%}"]
        for i in range(comp.n_rows) if comp["count"][i] > 0
    ]
    print(render_table(["GPU error", "count", "worst-node share"], rows,
                       title="failure composition (Table 4)"))

    # --- Figure 13: strongest significant co-occurrences ---
    co = cooccurrence_matrix(log, twin.config.n_nodes)
    sig = co["significant"]
    pairs = []
    for i in range(len(XID_TYPES)):
        for j in range(i + 1, len(XID_TYPES)):
            if np.isfinite(sig[i, j]) and abs(sig[i, j]) > 0.1:
                pairs.append((abs(sig[i, j]), XID_TYPES[i].name,
                              XID_TYPES[j].name, sig[i, j]))
    pairs.sort(reverse=True)
    print()
    print(render_table(
        ["type A", "type B", "pearson r"],
        [[a, b, f"{r:.2f}"] for _, a, b, r in pairs[:8]],
        title="significant co-occurrence (Figure 13, Bonferroni-corrected)",
    ))

    # --- Figure 14: most error-prone projects ---
    proj = failures_per_project(log, twin.catalog, twin.schedule, top=8)
    t = proj["table"]
    print()
    print(render_table(
        ["project", "failures", "per node-hour"],
        [[str(t["project"][i]), int(t["n_failures"][i]),
          f"{t['per_node_hour'][i]:.2e}"] for i in range(t.n_rows)],
        title="top error-prone projects (Figure 14)",
    ))

    # --- Figure 15: thermal extremity ---
    th = thermal_extremity(log, twin.job_thermal)
    tt = th["table"].filter(th["table"]["n"] >= 20)
    print()
    print(render_table(
        ["GPU error", "n", "z skew", "max temp (C)"],
        [[str(tt["xid_name"][i]), int(tt["n"][i]),
          f"{tt['z_skewness'][i]:.2f}", f"{tt['max_temp_c'][i]:.1f}"]
         for i in range(tt.n_rows)],
        title="thermal extremity (Figure 15): no left skew anywhere",
    ))

    # --- Figure 16: slot placement ---
    sc = slot_counts(log)
    print()
    print(render_hist([f"GPU {s}" for s in range(6)], sc["matrix"].sum(axis=0),
                      title="failures per GPU slot (Figure 16)"))
    print("\nNote the reverse of the naive cooling-order expectation: "
          "slot 0 (first, coolest water) fails the most — exposure from "
          "single-GPU jobs, not water temperature, dominates.")


if __name__ == "__main__":
    main()

"""Cross-cutting facility analysis: the Section 5 workflow.

Simulates the same busy week twice — once in January, once in late July —
and shows how weather turns identical IT load into very different PUE:
evaporative towers in winter, chilled-water trim in summer, with the
staging/de-staging asymmetry visible around load swings.

Run:  python examples/facility_cooling.py
"""

import numpy as np

from repro.config import fahrenheit_to_celsius
from repro.core.report import render_series, render_table
from repro.datasets import SimulationSpec, simulate_twin

JULY_24 = 205 * 86_400.0


def main() -> None:
    results = {}
    for label, start in (("January", 0.0), ("late July", JULY_24)):
        twin = simulate_twin(SimulationSpec(
            n_nodes=120, n_jobs=2500, horizon_s=5 * 86_400.0, seed=21,
            start_time=start,
        ))
        st = twin.plant_state(dt=60.0)
        wb = twin.weather.wet_bulb_c(st.times)
        results[label] = (twin, st, wb)

    rows = []
    for label, (twin, st, wb) in results.items():
        rows.append([
            label,
            f"{wb.mean():.1f}",
            f"{st.pue.mean():.3f}",
            f"{(st.chiller_tons > 0).mean():.0%}",
            f"{st.mtw_return_c.mean():.1f}",
        ])
    print(render_table(
        ["season", "mean wet bulb (C)", "mean PUE", "chiller time",
         "mean MTW return (C)"],
        rows,
        title="same workload, two seasons (Section 5 / Figure 5)",
    ))

    # look at one summer day in detail
    twin, st, _ = results["late July"]
    day = slice(0, int(86_400 / 60))
    print()
    print(render_series("IT power (summer day)",
                        st.times[day] * 0 + _it_power(twin)[day], "W"))
    print(render_series("PUE", st.pue[day]))
    print(render_series("tower tons", st.tower_tons[day]))
    print(render_series("chiller tons", st.chiller_tons[day]))
    print(render_series("MTW return (C)", st.mtw_return_c[day]))

    setp = fahrenheit_to_celsius(70.0)
    print(f"\nMTW supply stays near its {setp:.1f} C setpoint "
          f"(range {st.mtw_supply_c.min():.1f}..{st.mtw_supply_c.max():.1f} C); "
          "the return temperature and tonnage carry the load signal — the "
          "coupling Figure 12 shows.")


def _it_power(twin):
    times, power = twin.cluster_power(dt=60.0)
    return power


if __name__ == "__main__":
    main()

"""The full telemetry data path, end to end (Sections 2-3).

Physics -> 1 Hz out-of-band sampling (noise, quantization, collector
delay) -> lossless codec accounting -> day-sharded storage -> parallel
10-second coarsening -> allocation interval-join -> job-wise series ->
job summaries.  This is the paper's Dask pipeline on the twin, shard by
shard, with nothing held in memory at full resolution.

Run:  python examples/telemetry_pipeline.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import (
    cluster_power_series,
    coarsen_telemetry,
    job_power_series,
    job_power_summary,
    tag_allocations,
)
from repro.core.report import fmt_si, render_table
from repro.datasets import SimulationSpec, simulate_twin
from repro.frame.table import Table, concat
from repro.parallel import Executor, PartitionedDataset, map_partitions
from repro.telemetry import compression_ratio


def main() -> None:
    twin = simulate_twin(SimulationSpec(
        n_nodes=90, n_jobs=600, horizon_s=86_400.0, seed=5,
    ))
    work = Path(tempfile.mkdtemp(prefix="repro-pipeline-"))
    print(f"workspace: {work}")

    # --- stage 1: collect 1 Hz telemetry into 30-minute shards ---
    span = 1800.0
    n_shards = 6
    raw = PartitionedDataset.create(work / "raw", "openbmc-1hz")
    sampler = twin.sampler()
    t0 = time.perf_counter()
    for i in range(n_shards):
        lo = 6 * 3600.0 + i * span
        arr = twin.builder.build(lo, lo + span, 1.0)
        tel = sampler.sample(arr)
        raw.append(tel, lo, lo + span)
    print(f"collected {raw.n_rows:,} 1 Hz rows in {n_shards} shards "
          f"({fmt_si(raw.n_bytes, 'B')} compressed on disk, "
          f"{time.perf_counter() - t0:.1f}s)")

    # codec accounting for one channel (the Section 2 '1 MB/s' claim)
    node0 = raw.read(0)
    ch = node0["input_power"][node0["node"] == 0]
    print(f"per-channel lossless codec: {compression_ratio(ch):.1f}x "
          "vs raw float64")

    # --- stage 2: parallel 10 s coarsening (Dataset 0) ---
    ex = Executor(backend="threads", max_workers=4)
    t0 = time.perf_counter()
    coarse_shards = map_partitions(
        raw, _coarsen_shard, ex
    )
    coarse = concat(coarse_shards)
    print(f"coarsened to {coarse.n_rows:,} 10 s windows "
          f"({time.perf_counter() - t0:.1f}s with {ex.max_workers} threads)")

    # --- stage 3: cluster series (Dataset 1) + job join (Dataset 3) ---
    cluster = cluster_power_series(coarse)
    tagged = tag_allocations(coarse, twin.schedule.node_allocations)
    job_series = job_power_series(tagged)
    summary = job_power_summary(job_series)

    rows = [
        ["raw 1 Hz rows", f"{raw.n_rows:,}"],
        ["10 s windows (Dataset 0)", f"{coarse.n_rows:,}"],
        ["cluster series rows (Dataset 1)", f"{cluster.n_rows:,}"],
        ["job series rows (Dataset 3)", f"{job_series.n_rows:,}"],
        ["jobs summarized (Dataset 5)", f"{summary.n_rows:,}"],
        ["peak cluster power", fmt_si(float(cluster["sum_inp"].max()), "W")],
    ]
    print()
    print(render_table(["stage", "value"], rows, title="pipeline summary"))


def _coarsen_shard(table: Table) -> Table:
    return coarsen_telemetry(table, ["input_power"], width=10.0)


if __name__ == "__main__":
    main()

"""Power-aware scheduling: the paper's conclusion as a what-if study.

The paper closes: "aggressive power and energy aware application
optimizations and scheduling policies can have impact even on HPC
deployments like Summit that impose no power constraints on its jobs."
This example runs the same one-day workload unconstrained and under a
power-cap admission policy, then prints the trade: flattened peak (cheaper
cooling provisioning) vs queue wait.

Run:  python examples/power_aware_scheduling.py
"""

import numpy as np

from repro.core.report import fmt_si, render_series, render_table
from repro.datasets import SimulationSpec, cluster_power_direct, simulate_twin
from repro.frame.join import join
from repro.machine import ChipPopulation
from repro.workload import PowerAwareScheduler, estimate_job_peak_w


def main() -> None:
    twin = simulate_twin(SimulationSpec(
        n_nodes=90, n_jobs=1500, horizon_s=86_400.0, seed=13,
        utilization_hint=0.88,
    ))
    cfg = twin.config
    chips = ChipPopulation(cfg, seed=13)
    machine_peak = cfg.n_nodes * cfg.node_max_power_w

    est = estimate_job_peak_w(twin.catalog)
    print(f"{twin.catalog.n_jobs} jobs; per-job peak estimates "
          f"{fmt_si(float(est.min()), 'W')} .. {fmt_si(float(est.max()), 'W')}")

    rows = []
    series = {}
    for label, cap_frac in (("baseline", None), ("cap 70%", 0.70),
                            ("cap 60%", 0.60)):
        if cap_frac is None:
            sched = twin.schedule
            delayed = 0
        else:
            res = PowerAwareScheduler(
                cap_frac * machine_peak, cfg, seed=13
            ).run_capped(twin.catalog, twin.spec.horizon_s)
            sched = res.schedule
            delayed = res.n_power_delayed
        _, power = cluster_power_direct(
            twin.catalog, sched, chips, twin.spec.horizon_s, seed=13
        )
        series[label] = power
        sub = join(
            sched.allocations,
            twin.catalog.table.select(["allocation_id", "submit_time"]),
            "allocation_id", how="inner",
        )
        wait_min = float((sub["begin_time"] - sub["submit_time"]).mean()) / 60.0
        rows.append([
            label, fmt_si(float(power.max()), "W"),
            fmt_si(float(power.mean()), "W"), f"{wait_min:.1f}",
            delayed, sched.allocations.n_rows,
        ])

    print()
    print(render_table(
        ["policy", "peak power", "mean power", "mean wait (min)",
         "power-delayed jobs", "jobs started"],
        rows,
        title="power-cap admission vs unconstrained (one day, 90-node twin)",
    ))
    print()
    for label, power in series.items():
        print(render_series(label, power, "W"))
    print("\nThe cap trims exactly the violent peaks Section 4.2 "
          "characterizes; the cost is queue wait, which the facility can "
          "weigh against the cooling capacity those peaks force it to hold.")


if __name__ == "__main__":
    main()

"""The Figure 2 operations view: near-real-time MTW dashboard, simulated.

The paper's telemetry system exists so facility engineers can watch the
histogram-based component-temperature distribution of all 27,756 GPUs next
to the plant telemetry in near real time.  This example replays a simulated
morning tick by tick: per 5-minute refresh it prints the GPU temperature
band histogram, the hot-component count, cluster power, and the MTW/plant
channels — exactly the cross-checks Section 2 describes.

Run:  python examples/live_dashboard.py
"""

import numpy as np

from repro.core.report import fmt_si, render_hist, sparkline
from repro.datasets import SimulationSpec, simulate_twin, thermal_cluster_series
from repro.datasets.thermal import DEFAULT_BANDS
from repro.telemetry import ingest_budget


def main() -> None:
    twin = simulate_twin(SimulationSpec(
        n_nodes=90, n_jobs=900, horizon_s=6 * 3600.0, seed=9,
        utilization_hint=0.9,
    ))
    budget = ingest_budget(twin.config)
    print(f"ingest path: {budget.metrics_per_second:,.0f} metrics/s over "
          f"{budget.n_service_nodes} service node(s); "
          f"mean propagation delay {budget.mean_delay_s:.1f} s\n")

    # one morning at 10 s resolution, summarized per 5-minute refresh
    series = thermal_cluster_series(twin, 0.0, 4 * 3600.0, dt=10.0)
    band_cols = [c for c in series.columns if c.startswith("band_")]
    labels = [f"{l} C" for l in ["<30"] + [
        f"{int(a)}-{int(b)}" for a, b in zip(DEFAULT_BANDS[:-1], DEFAULT_BANDS[1:])
    ] + [f">={int(DEFAULT_BANDS[-1])}"]]

    refresh = 30  # every 30 x 10 s = 5 minutes
    for k in range(0, series.n_rows, refresh * 4):  # show every 20 minutes
        t = series["timestamp"][k]
        counts = [int(series[c][k]) for c in band_cols]
        print(f"== t+{t / 60:5.0f} min | "
              f"GPUs reporting {int(series['n_reporting'][k]):,} | "
              f"hot (>=65C): {int(series['n_hot'][k])} | "
              f"mean {series['gpu_core_mean'][k]:.1f} C / "
              f"max {series['gpu_core_max'][k]:.1f} C | "
              f"MTW {series['mtwst'][k]:.1f} -> {series['mtwrt'][k]:.1f} C | "
              f"PUE {series['pue'][k]:.3f}")
        print(render_hist(labels, counts, width=30))
        print()

    print("4-hour trends:")
    print(f"  mean GPU temp  {sparkline(series['gpu_core_mean'], 70)}")
    print(f"  MTW return     {sparkline(series['mtwrt'], 70)}")
    print(f"  PUE            {sparkline(series['pue'], 70)}")


if __name__ == "__main__":
    main()

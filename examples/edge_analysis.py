"""Power-dynamics analysis: the Section 4.2 workflow on a simulated day.

Detects rising/falling edges in cluster power (the paper's 868 W/node
threshold), measures edge durations (80% return rule), superimposes
snapshots around rising edges, and characterizes each job's dominant FFT
mode — Figures 10 and 11 on your own twin.

Run:  python examples/edge_analysis.py
"""

import numpy as np

from repro.core.edges import (
    amplitude_class_mw,
    detect_edges,
    edges_per_job,
    extract_snapshot,
    superimpose,
)
from repro.core.report import render_cdf_quantiles, render_series
from repro.core.spectral import job_spectral_summary
from repro.datasets import SimulationSpec, simulate_twin


def main() -> None:
    twin = simulate_twin(SimulationSpec(
        n_nodes=180, n_jobs=2800, horizon_s=3 * 86_400.0, seed=11,
    ))

    # --- per-job edge statistics (Figure 10, top) ---
    series = twin.job_series()
    edges, per_job = edges_per_job(series)
    edge_free = (per_job["n_edges"] == 0).mean()
    print(f"jobs: {per_job.n_rows}; edge-free: {edge_free:.1%} "
          "(paper: 96.9%)")
    if edges.n_rows:
        print(render_cdf_quantiles("edges per job (jobs w/ edges)",
                                   per_job["n_edges"][per_job["n_edges"] > 0]))
        print(render_cdf_quantiles("edge duration (min)",
                                   edges["duration_s"] / 60.0))

    # --- per-job dominant FFT mode (Figure 10, bottom) ---
    spec = job_spectral_summary(series)
    f = spec["fft_freq_hz"]
    ok = np.isfinite(f) & (f > 0)
    print(render_cdf_quantiles("dominant period (s)", 1.0 / f[ok]))

    # --- cluster-level rising edges and their snapshots (Figure 11) ---
    times, power = twin.cluster_power(dt=10.0)
    thr = twin.config.edge_threshold_w_per_node * twin.config.n_nodes
    cluster_edges = detect_edges(times, power, threshold_w=0.3 * thr)
    rising = cluster_edges.filter(cluster_edges["direction"] == 1)
    print(f"\ncluster rising edges: {rising.n_rows} "
          f"(threshold {0.3 * thr / 1e3:.0f} kW)")

    if rising.n_rows:
        # superimpose all snapshots aligned at their edges
        snaps = np.array([
            extract_snapshot(times, power, t, before_s=60.0, after_s=240.0)
            for t in rising["time"]
        ])
        s = superimpose(snaps)
        print(render_series("mean rising-edge snapshot", s["mean"], "W"))
        print(render_series("95% CI half-width", s["ci95"], "W"))
        amp = amplitude_class_mw(
            rising["amplitude_w"] * 4626 / twin.config.n_nodes
        )
        vals, counts = np.unique(amp, return_counts=True)
        print("amplitude census (full-scale MW bins): "
              + "  ".join(f"{v}MW-{c}" for v, c in zip(vals, counts)))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Validate a REPRO_TRACE JSONL file (the CI gate for traced smoke runs).

Checks, in order:

1. every line parses and carries the full span-record schema;
2. the records rebuild into a well-formed forest — unique ids, no
   orphans, children inside their parent's interval (this is
   :func:`repro.obs.export.validate_spans`, the same validation the
   property tests run);
3. every ``--require-span NAME`` appears at least once — CI uses this to
   assert a traced query round trip really captured the client span, the
   server's request/admission/plan spans, the per-shard fan-out, and the
   merge/encode tail;
4. ``--require-child PARENT:CHILD`` edges exist somewhere in the forest
   (e.g. ``serve.request:serve.query`` proves the server re-parented
   under the client's context rather than starting a fresh root).

Exits non-zero with a message on the first failure; prints a one-line
summary (and the flame rendering with ``--flame``) on success.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.obs.export import (  # noqa: E402
    TraceError,
    build_forest,
    flame_summary,
    load_trace,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="JSONL trace file to validate")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a span with this name exists "
                             "(repeatable)")
    parser.add_argument("--require-child", action="append", default=[],
                        metavar="PARENT:CHILD",
                        help="fail unless some PARENT span has a direct "
                             "CHILD span (repeatable)")
    parser.add_argument("--min-spans", type=int, default=1,
                        help="fail below this many records (default 1)")
    parser.add_argument("--flame", action="store_true",
                        help="print the flame summary on success")
    args = parser.parse_args(argv)

    try:
        records = load_trace(args.file)
    except (OSError, TraceError) as err:
        print(f"check_trace: FAIL: {err}")
        return 1
    if len(records) < args.min_spans:
        print(f"check_trace: FAIL: {len(records)} spans in {args.file}, "
              f"need at least {args.min_spans}")
        return 1
    try:
        forest = build_forest(records)
    except TraceError as err:
        print(f"check_trace: FAIL: malformed forest: {err}")
        return 1

    names = {r["name"] for r in records}
    for required in args.require_span:
        if required not in names:
            print(f"check_trace: FAIL: no span named {required!r} "
                  f"(saw: {', '.join(sorted(names))})")
            return 1

    edges = set()

    def walk(node):
        for child in node.children:
            edges.add((node.name, child.name))
            walk(child)

    for root in forest:
        walk(root)
    for spec in args.require_child:
        parent, _, child = spec.partition(":")
        if not child:
            print(f"check_trace: FAIL: bad --require-child {spec!r} "
                  f"(expected PARENT:CHILD)")
            return 1
        if (parent, child) not in edges:
            print(f"check_trace: FAIL: no edge {parent!r} -> {child!r} "
                  f"in the forest")
            return 1

    print(f"check_trace: OK: {len(records)} spans, {len(forest)} roots, "
          f"{len(names)} distinct names in {args.file}")
    if args.flame:
        print(flame_summary(records))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Regenerate the benchmark artifacts and diff them against the committed
goldens in ``benchmarks/output/``.

Two comparison modes:

* **exact** (``--exact``, the default at ``--scale 1.0``): byte-for-byte
  diff of every artifact — the strict check after an intentional
  full-scale regeneration.
* **scalar** (default below full scale): each artifact must exist, keep
  its title line, and its *key scalars* (the scale-robust numbers listed
  in :data:`SPECS` — PUE anchors, machine-sized row counts, config
  tables, validation biases) must match the golden within a per-scalar
  tolerance.  Job-population statistics are deliberately *not* compared:
  they move with ``REPRO_BENCH_SCALE``.

The scalar comparator is imported by ``tests/golden`` so the CI golden
check and the local tool cannot drift apart.  Benchmarks that fail their
own full-scale anchors at small scale still emit artifacts first, so the
regeneration run's exit code is informational only.

Usage::

    python tools/check_golden.py                 # full-scale, exact diff
    python tools/check_golden.py --scale 0.02    # quick, key scalars only
    python tools/check_golden.py --output DIR    # keep regenerated files
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "benchmarks" / "output"


@dataclass(frozen=True)
class Scalar:
    """One key number: first regex group compared as a float within
    ``tol`` (``rel``-ative or absolute)."""

    label: str
    pattern: str
    tol: float
    rel: bool = False


@dataclass(frozen=True)
class Exact:
    """First regex group (or whole match) compared for string equality."""

    label: str
    pattern: str


#: key scalars per artifact stem; files absent here get the structural
#: check only (exists, non-empty, identical title line)
SPECS: dict[str, list] = {
    "table1_system": [
        Exact("nodes", r"Nodes\s+\S[^\n]*?(?=\s*\n)"),
        Exact("peak power", r"Peak power\s+\S[^\n]*?(?=\s*\n)"),
        Exact("towers/chillers", r"Cooling towers / chillers\s+\d+ / \d+"),
    ],
    "table2_data": [
        Exact("telemetry rows", r"\(a\) per-node telemetry\s+\d+\s+\d+"),
        Exact("plant rows", r"\(b\) central energy plant\s+\d+\s+\d+"),
    ],
    "table3_classes": [
        Exact("class-2 bounds", r"(?m)^2\s+(\S+)\s+(\S+)"),
        Exact("class-5 bounds", r"(?m)^5\s+(\S+)\s+(\S+)"),
        Scalar("class-5 share %", r"(?m)^5\s+.*?([\d.]+)%\s*$", tol=10.0),
    ],
    "fig04_validation": [
        Scalar("summation bias %", r"\(([-\d.]+)% of metered power", tol=5.0),
    ],
    "fig05_year_trend": [
        Scalar("annual PUE", r"annual PUE ([\d.]+)", tol=0.08),
        Scalar("summer PUE", r"summer PUE ([\d.]+)", tol=0.08),
        Scalar("idle floor MW", r"idle floor ([\d.]+) MW", tol=0.10, rel=True),
        Scalar("peak MW", r"peak ([\d.]+) MW", tol=0.25, rel=True),
    ],
    "fig12_thermal_response": [
        Scalar("staging lag s", r"measured staging lag: (\d+) s", tol=45.0),
    ],
    "fig18_fingerprint": [
        Scalar("global MAE W/node", r"global (\d+) W/node", tol=0.30,
               rel=True),
    ],
    "ablation_coarsen": [
        Exact("10 s window count", r"(?m)^10 s\s+(\d+)"),
        Scalar("10 s PUE", r"(?m)^10 s\s.*?([\d.]+)\s*$", tol=0.06),
    ],
    "ablation_destaging": [
        Scalar("60 s PUE", r"(?m)^60 s\s+([\d.]+)", tol=0.02),
    ],
    "pipeline_scaling": [
        Exact("single-pass row", r"(?m)^single-pass\s+\d+"),
        Exact("serial shards", r"(?m)^serial\s+\d+"),
        Exact("processes shards", r"(?m)^processes x4\s+\d+"),
        Exact("fused shards", r"(?m)^fused x4\s+\d+"),
        Exact("bit-identical", r"all variants bit-identical: \w+"),
        # ratio value is box-dependent; assert the pin line + budget only
        Exact("process overhead pinned",
              r"processes/threads ratio: [\d.]+x (\(budget [\d.]+x\))"),
        # the % is box-dependent; pin the anchor line + its 1% budget
        Exact("tracing overhead pinned",
              r"tracing-disabled overhead: [\d.]+% of hot path over "
              r"\d+ span calls (\(budget \d+%\))"),
        Exact("kernel table present", r"(?m)^sorted-path\b"),
    ],
    "io_throughput": [
        Exact("bit-identical", r"all reads bit-identical: \w+"),
        Exact("zone-pruned shards", r"zone-map pruned shards: \d+/\d+"),
        # sizes and timings are box/scale-dependent; assert the bound
        # lines (and their budgets) are present and unchanged
        Exact("bytes bound pinned",
              r"compressed/npz bytes: [\d.]+ (\(must be < 1\))"),
        Exact("cold-read bound pinned",
              r"compressed/raw cold read: [\d.]+x (\(budget [\d.]+x\))"),
    ],
    "stream_throughput": [
        Exact("replayed rows", r"replayed rows: (\d+)"),
        Exact("bit-identical to batch", r"streaming == batch: (\w+)"),
        Exact("late rows skew-free", r"late rows skew-free: (\d+)"),
        Exact("late rows skewed", r"late rows skewed: (\d+)"),
    ],
    "power_aware": [
        Exact("engines bit-identical",
              r"engines bit-identical \(schedule \+ cap accounting\): "
              r"(\w+)"),
        # runtime ratio is box-dependent; pin the line + floor only
        Exact("engine ratio pinned",
              r"event/reference runtime at 60% cap: [\d.]+x "
              r"(\(floor [\d.]+x\))"),
    ],
    "sched_scale": [
        Exact("schedule bit-identical",
              r"schedule bit-identical at all co-timed points: (\w+)"),
        Exact("trace bit-identical", r"trace arrays bit-identical: (\w+)"),
        Exact("feed probes match",
              r"partitioned feed probes match interval index: (\w+)"),
        # speedups are box/scale-dependent; pin the lines + floors only
        Exact("jobs/s floor pinned",
              r"jobs/s speedup at largest point: [\d.]+x (\(floor \d+x\))"),
        Exact("trace floor pinned",
              r"trace node-seconds/s speedup: [\d.]+x (\(floor \d+x\))"),
    ],
    "query_service": [
        Exact("bit-identical to pipeline", r"service == pipeline: (\w+)"),
        Exact("fragments bit-identical", r"fragments on == off: (\w+)"),
        # the single-flight and overload splits are decided synchronously
        # on the event loop: exact at every scale, on every box
        Exact("single-flight collapse",
              r"single-flight: executed \d+ of \d+ identical concurrent "
              r"queries"),
        Exact("overload split",
              r"overload: offered \d+ -> ok \d+ \(queued \d+\), "
              r"rejected \d+ \(capacity \d+, quota \d+\)"),
        # throughput is box-dependent; assert the pin lines + floors only
        Exact("cold-wave floor pinned",
              r"cold wave @8 vs @1 throughput: [\d.]+x "
              r"(\(floor [\d.]+x\))"),
        Exact("overlap-sweep floor pinned",
              r"overlap sweep with/without fragments: [\d.]+x "
              r"(\(floor [\d.]+x\))"),
        Exact("speedup floor pinned",
              r"warm@8 vs cold@1 throughput: [\d.]+x "
              r"(\(must be >= \d+x\))"),
        # the % is box-dependent; pin the anchor line + its 1% budget
        Exact("tracing overhead pinned",
              r"tracing-disabled overhead: [\d.]+% of service phases "
              r"over \d+ span calls (\(budget \d+%\))"),
    ],
}


def _first_match(text: str, pattern: str) -> str | None:
    m = re.search(pattern, text)
    if m is None:
        return None
    return m.group(1) if m.groups() else m.group(0)


def compare_text(stem: str, fresh: str, golden: str) -> list[str]:
    """Scalar-mode comparison of one artifact; returns mismatch messages."""
    problems: list[str] = []
    fresh_title = fresh.splitlines()[0] if fresh else ""
    golden_title = golden.splitlines()[0] if golden else ""
    if fresh_title != golden_title:
        problems.append(
            f"title changed: {fresh_title!r} != {golden_title!r}"
        )
    for spec in SPECS.get(stem, []):
        got = _first_match(fresh, spec.pattern)
        want = _first_match(golden, spec.pattern)
        if want is None:
            problems.append(f"{spec.label}: pattern missing from golden")
            continue
        if got is None:
            problems.append(f"{spec.label}: pattern missing from output")
            continue
        if isinstance(spec, Exact):
            if got != want:
                problems.append(f"{spec.label}: {got!r} != {want!r}")
            continue
        g, w = float(got), float(want)
        bound = spec.tol * abs(w) if spec.rel else spec.tol
        if abs(g - w) > bound:
            kind = "rel" if spec.rel else "abs"
            problems.append(
                f"{spec.label}: {g} vs golden {w} "
                f"(|diff| {abs(g - w):.4g} > {kind} tol {spec.tol})"
            )
    return problems


def compare_dirs(fresh_dir: Path, golden_dir: Path = GOLDEN_DIR,
                 exact: bool = False) -> dict[str, list[str]]:
    """Compare every golden artifact against its regenerated counterpart.

    Returns ``{stem: [problem, ...]}`` for artifacts that disagree.
    """
    failures: dict[str, list[str]] = {}
    for golden_path in sorted(golden_dir.glob("*.txt")):
        stem = golden_path.stem
        fresh_path = fresh_dir / golden_path.name
        if not fresh_path.exists():
            failures[stem] = ["artifact was not regenerated"]
            continue
        fresh = fresh_path.read_text()
        golden = golden_path.read_text()
        if not fresh.strip():
            failures[stem] = ["regenerated artifact is empty"]
            continue
        if exact:
            if fresh != golden:
                failures[stem] = ["byte-level diff from committed golden"]
            continue
        problems = compare_text(stem, fresh, golden)
        if problems:
            failures[stem] = problems
    return failures


def regenerate(out_dir: Path, scale: float) -> int:
    """Run the benchmark suite with artifacts redirected to ``out_dir``.

    Returns pytest's exit code (non-zero is tolerated at small scale:
    full-scale anchors may trip, but artifacts are emitted first).
    """
    env = dict(os.environ)
    env["REPRO_BENCH_SCALE"] = str(scale)
    env["REPRO_BENCH_OUTPUT"] = str(out_dir)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks", "-q",
         "-p", "no:cacheprovider"],
        cwd=REPO_ROOT,
        env=env,
    )
    return proc.returncode


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=1.0,
                    help="REPRO_BENCH_SCALE for the regeneration run")
    ap.add_argument("--output", type=Path, default=None,
                    help="keep regenerated artifacts here (default: tmp)")
    ap.add_argument("--exact", action="store_true",
                    help="byte-level diff (default when --scale is 1.0)")
    ap.add_argument("--compare-only", type=Path, default=None, metavar="DIR",
                    help="skip regeneration; compare an existing directory")
    args = ap.parse_args(argv)

    exact = args.exact or args.scale >= 1.0
    if args.compare_only is not None:
        fresh_dir = args.compare_only
    else:
        fresh_dir = args.output or Path(tempfile.mkdtemp(prefix="golden-"))
        rc = regenerate(fresh_dir, args.scale)
        if rc != 0:
            print(f"note: benchmark run exited {rc} "
                  f"(tolerated; comparing emitted artifacts)")

    failures = compare_dirs(fresh_dir, exact=exact)
    n = len(list(GOLDEN_DIR.glob('*.txt')))
    if not failures:
        mode = "exact" if exact else "key-scalar"
        print(f"OK: {n} artifacts match the committed goldens ({mode} mode)")
        return 0
    for stem, problems in failures.items():
        for p in problems:
            print(f"MISMATCH {stem}: {p}")
    print(f"{len(failures)}/{n} artifacts disagree with benchmarks/output/")
    return 1


if __name__ == "__main__":
    sys.exit(main())

"""Generate docs/API.md: every public symbol with its signature and the
first line of its docstring.

Run:  python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path

PACKAGES = [
    "repro",
    "repro.config",
    "repro.frame",
    "repro.parallel",
    "repro.machine",
    "repro.workload",
    "repro.cooling",
    "repro.failures",
    "repro.telemetry",
    "repro.core",
    "repro.datasets",
    "repro.pipeline",
    "repro.stream",
    "repro.serve",
    "repro.obs",
]


#: hand-written prose injected under a package's generated section
PROSE = {
    "repro.pipeline": """\
### Pipeline & caching

`repro.pipeline` runs the twin and its dataset derivations **out of
core**: the horizon is split into `chunk_seconds`-wide time windows, each
window is one task fanned out through `repro.parallel.Executor`
(`serial` / `threads` / `processes`), and chunked results are
**bit-identical** to the single-pass path (asserted by
`tests/pipeline/test_equivalence.py`).

With a `cache_dir`, every chunk artifact is stored **content-addressed**:
the key is a SHA-256 over the canonical form of
`(format version, simulation spec, stage name, stage params, chunk id)`,
laid out git-style as `<first 2 hex>/<hash>.npz` (atomic writes; torn
entries read as misses).  A re-run with the same spec serves chunks from
the cache and reports it in the `PipelineStats` table.

CLI integration (`python -m repro simulate|export`):

| flag | meaning |
|---|---|
| `--chunk-seconds S` | shard width (default 86400, one day) |
| `--cache-dir DIR` | enable the artifact cache |
| `--backend {serial,threads,processes}` | chunk fan-out backend |
| `--workers N` | executor pool size (default: cores - 1, capped by `REPRO_MAX_WORKERS`) |
| `--no-stats` | suppress the per-stage counter report |
""",
    "repro.stream": """\
### Streaming engine

`repro.stream` is the live counterpart of the batch analyses: a
`TelemetryReplaySource` replays archived telemetry through the modeled
fan-in path (per-hop delays, out-of-order arrival, loss gaps), and
incremental operators finalize event-time windows as a bounded-lateness
watermark passes them.  Scheduling is pull-based and downstream-first
over bounded queues, so backpressure propagates upstream without
dropping batches, and the whole graph (source cursor, operator state,
queued batches, counters) checkpoints to a plain dict or pickle file.

Two guarantees, both asserted by `tests/stream/`:

* **bit-identity** — on skew-free, loss-free input, streamed
  coarsen/aggregate/edge/PUE outputs equal the batch
  `repro.core`/`repro.frame` results exactly (same kernels, same rows,
  same order);
* **exact accounting** — with skew or loss, every sample the stream
  does not fold in is counted (`late`, `nan`, `loss_dropped`), and
  `rows replayed == rows in windows + late + NaN-dropped` always holds.

CLI integration (`python -m repro stream`):

| flag | meaning |
|---|---|
| `--minutes M` | length of telemetry to replay (default 30) |
| `--batch-interval S` | source flush interval in arrival seconds |
| `--no-skew` | zero the fan-in delays (arrival = event time) |
| `--lateness S` | watermark lateness bound (default 8 s) |
| `--queue-capacity N` | bounded per-node input queue length |
| `--max-batches N` | pause mid-stream after N source batches |
| `--checkpoint PATH` | resume from / save a mid-stream checkpoint |
""",
    "repro.serve": """\
### Query service

`repro.serve` serves an archived `PartitionedDataset` to many tenants
at once.  A declarative `Query` is validated and canonicalized (its
SHA-256 fingerprint is spelling-invariant), planned into the storage
pushdowns (zone-map shard pruning + column projection), and executed on
an asyncio loop that offloads shard reads to a worker pool.  Results
are bit-identical to `Pipeline.telemetry_series` over the same archive.

Load management is explicit: a byte-capped LRU **result cache** (with
optional disk spill), **single-flight** collapse of concurrent
identical queries, and **admission control** (bounded in-flight slots,
bounded FIFO queue, per-tenant quotas) that rejects — never hangs —
overload.  Transport is newline-delimited JSON over TCP.

CLI integration:

| command | meaning |
|---|---|
| `python -m repro export ... --telemetry-minutes M` | archive raw telemetry for serving |
| `python -m repro serve DATASET [--port P] [--max-inflight N] [--cache-mb M]` | run the TCP server |
| `python -m repro query --port P [--t-begin S --t-end S] [--pue] [--stats]` | one query / the service report |
""",
    "repro.obs": """\
### Observability

`repro.obs` is the zero-dependency observability layer shared by every
subsystem: structured **tracing** (`trace.span(...)` context managers
whose parent/child nesting survives process pools and the TCP boundary
via explicit `SpanContext` propagation), a **metrics registry**
(counters, gauges, fixed-bucket histograms — the typed backing store
for the pipeline/serve/stream stats silos), a **sampling profiler**
(`REPRO_PROFILE=1`), and NDJSON **event logs** (the serve slow-query
log).  Tracing off is a single branch per call; the benchmarks pin its
cost below 1% of the hot paths.

Environment and CLI integration:

| knob | meaning |
|---|---|
| `REPRO_TRACE=FILE` (or `1` + `REPRO_TRACE_FILE`) | capture spans from any `python -m repro ...` run |
| `REPRO_PROFILE=1` (or an interval in ms) | print a sampled self-time profile on exit |
| `python -m repro trace FILE [--depth N] [--chrome OUT]` | flame summary / Chrome `trace_event` export |
| `python -m repro serve ... --slow-query-ms N --slow-query-log FILE` | NDJSON record per slow query |
| `python tools/check_trace.py FILE --require-span ... --require-child P:C` | validate a captured trace (CI gate) |
""",
}


def summarize(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    first = doc.split("\n\n")[0].replace("\n", " ").strip()
    return first[:160] + ("..." if len(first) > 160 else "")


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(...)"


def document_module(name: str) -> list[str]:
    mod = importlib.import_module(name)
    lines = [f"## `{name}`", ""]
    mod_doc = summarize(mod)
    if mod_doc:
        lines += [mod_doc, ""]
    if name in PROSE:
        lines += [PROSE[name], ""]
    public = getattr(mod, "__all__", None)
    if public is None:
        public = [n for n in dir(mod) if not n.startswith("_")]
    for sym in public:
        obj = getattr(mod, sym, None)
        if obj is None:
            continue
        if inspect.ismodule(obj):
            continue
        if inspect.isclass(obj):
            lines.append(f"- **class `{sym}`** — {summarize(obj)}")
            for mname, meth in inspect.getmembers(obj, inspect.isfunction):
                if mname.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                lines.append(
                    f"  - `{mname}{signature_of(meth)}` — {summarize(meth)}"
                )
        elif callable(obj):
            lines.append(f"- `{sym}{signature_of(obj)}` — {summarize(obj)}")
        else:
            lines.append(f"- `{sym}` — constant ({type(obj).__name__})")
    lines.append("")
    return lines


def main() -> None:
    out = [
        "# API reference",
        "",
        "Generated by `python tools/gen_api_docs.py`; regenerate after",
        "changing any public signature.",
        "",
    ]
    for name in PACKAGES:
        out.extend(document_module(name))
    path = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    path.parent.mkdir(exist_ok=True)
    path.write_text("\n".join(out) + "\n")
    print(f"wrote {path} ({len(out)} lines)")


if __name__ == "__main__":
    main()
